"""Module framework: registration, hooks, state dicts, modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.container import Sequential
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, ReLU
from repro.nn.module import Module, Parameter
from tests.conftest import build_tiny_cnn


class TestRegistration:
    def test_named_parameters_paths(self, tiny_cnn):
        names = [n for n, _ in tiny_cnn.named_parameters()]
        assert "m0.weight" in names and "m0.bias" in names
        assert "m5.weight" in names
        assert len(names) == len(set(names))

    def test_num_parameters(self, rng):
        lin = Linear(4, 3, rng=rng)
        assert lin.num_parameters() == 4 * 3 + 3

    def test_buffers_registered(self):
        bn = BatchNorm2d(4)
        names = [n for n, _ in bn.named_buffers()]
        assert set(names) == {"running_mean", "running_var"}

    def test_zero_grad(self, tiny_cnn, rng, tiny_batch):
        x, _ = tiny_batch
        out = tiny_cnn(x)
        tiny_cnn.backward(np.ones_like(out))
        assert any(np.abs(p.grad).sum() > 0 for p in tiny_cnn.parameters())
        tiny_cnn.zero_grad()
        assert all(np.abs(p.grad).sum() == 0 for p in tiny_cnn.parameters())


class TestHooks:
    def test_forward_hook_sees_input_and_output(self, rng):
        lin = Linear(4, 3, rng=rng)
        seen = []
        lin.register_forward_hook(lambda m, i, o: seen.append((i, o)))
        x = rng.normal(size=(2, 4)).astype(np.float32)
        out = lin(x)
        assert len(seen) == 1
        assert seen[0][0] is x
        np.testing.assert_array_equal(seen[0][1], out)

    def test_backward_hook_sees_grad_output(self, rng):
        lin = Linear(4, 3, rng=rng)
        seen = []
        lin.register_backward_hook(lambda m, g: seen.append(g))
        x = rng.normal(size=(2, 4)).astype(np.float32)
        lin(x)
        g = rng.normal(size=(2, 3)).astype(np.float32)
        lin.backprop(g)
        assert len(seen) == 1 and seen[0] is g

    def test_hooks_fire_through_containers(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        fired = []
        for _, mod in model.named_modules():
            if isinstance(mod, Linear):
                mod.register_forward_hook(lambda m, i, o: fired.append("f"))
                mod.register_backward_hook(lambda m, g: fired.append("b"))
        x = rng.normal(size=(2, 4)).astype(np.float32)
        out = model(x)
        model.backward(np.ones_like(out))
        assert fired.count("f") == 2 and fired.count("b") == 2

    def test_hook_removal(self, rng):
        lin = Linear(2, 2, rng=rng)
        seen = []
        remove = lin.register_forward_hook(lambda m, i, o: seen.append(1))
        lin(np.zeros((1, 2), dtype=np.float32))
        remove()
        lin(np.zeros((1, 2), dtype=np.float32))
        assert len(seen) == 1


class TestStateDict:
    def test_roundtrip(self, rng):
        a = build_tiny_cnn(seed=1)
        b = build_tiny_cnn(seed=2)
        state = a.state_dict()
        b.load_state_dict(state)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_includes_buffers(self, rng):
        model = Sequential(Conv2d(1, 2, 3, padding=1, rng=rng), BatchNorm2d(2))
        model(rng.normal(size=(4, 1, 4, 4)).astype(np.float32))
        state = model.state_dict()
        buffer_keys = [k for k in state if k.startswith("buffer:")]
        assert len(buffer_keys) == 2
        fresh = Sequential(Conv2d(1, 2, 3, padding=1, rng=rng), BatchNorm2d(2))
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh[1].running_mean, model[1].running_mean)

    def test_state_dict_is_a_copy(self, rng):
        lin = Linear(2, 2, rng=rng)
        state = lin.state_dict()
        state["weight"][...] = 99.0
        assert not np.any(lin.weight.data == 99.0)

    def test_shape_mismatch_raises(self, rng):
        lin = Linear(2, 2, rng=rng)
        with pytest.raises(ValueError):
            lin.load_state_dict({"weight": np.zeros((3, 3))})

    def test_unknown_key_raises(self, rng):
        lin = Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            lin.load_state_dict({"nope": np.zeros(1)})


class TestModes:
    def test_train_eval_recursive(self, tiny_cnn):
        tiny_cnn.eval()
        assert all(not m.training for m in tiny_cnn.modules())
        tiny_cnn.train()
        assert all(m.training for m in tiny_cnn.modules())


class TestSequential:
    def test_iteration_and_indexing(self, rng):
        layers = [Linear(2, 2, rng=rng), ReLU()]
        seq = Sequential(*layers)
        assert len(seq) == 2
        assert seq[0] is layers[0]
        assert list(seq) == layers

    def test_append(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng))
        seq.append(ReLU())
        assert len(seq) == 2

    def test_backward_reverses(self, rng):
        order = []

        class Probe(Module):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def forward(self, x):
                return x

            def backward(self, g):
                order.append(self.tag)
                return g

        seq = Sequential(Probe("a"), Probe("b"))
        seq(np.zeros(1))
        seq.backward(np.zeros(1))
        assert order == ["b", "a"]


class TestParameter:
    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        np.testing.assert_array_equal(p.grad, np.zeros(3))

    def test_size_and_shape(self):
        p = Parameter(np.ones((2, 3)))
        assert p.size == 6 and p.shape == (2, 3)
