"""The dependency-graph task scheduler (``repro.sched``).

Covers the unification guarantees of the graph scheduler:

1. equivalence matrix — the scheduler routes ("sync" and "graph")
   reproduce the retired hand-written pipelines' trajectories across
   {COMM_OPT, LAYER_WISE, HYBRID f in {1/P, 0.5, 1}} x
   {fp32, comm_dtype="fp16"} x symmetric on/off, P in {2, 4, 7};
2. DAG validity — plans are acyclic, every layer's ``Precondition``
   is reachable from a ``FactorComm`` node, and the topological order
   is deterministic and rank-independent;
3. the schedule linter rejects duplicate, unknown, mis-ordered, and
   unreachable task names;
4. overlap regression — HYBRID group eigenbasis shares are schedulable
   nodes: the graph route reports hidden ``eig_comm`` seconds at P >= 4
   (the retired hybrid pipeline ran the share synchronously), visible
   both in the raw overlap ledger and in ``TrainingHistory``;
5. the modeled ``stage_profile(scheduler=...)`` prices the graph route
   strictly below the retired hybrid pipeline's exposed share.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preconditioner import COMM_OPT, HYBRID, LAYER_WISE, KFAC, KFACHyperParams
from repro.parallel.trainer import DataParallelTrainer, TrainerConfig
from repro.optim.lr_scheduler import ConstantSchedule
from repro.sched import (
    SchedulerError,
    Task,
    TaskGraph,
    build_step_plan,
    choose_bucket_bytes,
    lint_schedule,
    plan_buckets,
)
from tests.conftest import build_tiny_cnn
from tests.test_grad_worker_frac import run_hybrid


def _strategy_kw(config: str, world_size: int) -> dict:
    """Map a matrix cell name to KFAC keyword arguments."""
    if config == "comm-opt":
        return {"strategy": COMM_OPT}
    if config == "layer-wise":
        return {"strategy": LAYER_WISE}
    frac = {"hybrid-1/p": 1.0 / world_size, "hybrid-0.5": 0.5, "hybrid-1": 1.0}[config]
    return {"strategy": HYBRID, "grad_worker_frac": frac}


CONFIGS = ["comm-opt", "layer-wise", "hybrid-1/p", "hybrid-0.5", "hybrid-1"]
COMM_VARIANTS = [
    {},
    {"comm_dtype": "fp16"},
    {"symmetric_comm": True},
    {"comm_dtype": "fp16", "symmetric_comm": True},
]


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("world_size", [2, 4, 7])
    @pytest.mark.parametrize("config", CONFIGS)
    def test_graph_matches_sync(self, world_size, config):
        """Same start, same data: the graph executor's trajectory equals the
        synchronous request stream's within reassociation noise."""
        kw = _strategy_kw(config, world_size)
        sync = run_hybrid(world_size, steps=2, scheduler="sync", **kw)
        graph = run_hybrid(world_size, steps=2, scheduler="graph", **kw)
        for key in sync:
            np.testing.assert_allclose(
                graph[key], sync[key], atol=1e-6, rtol=1e-6, err_msg=f"{config}:{key}"
            )

    @pytest.mark.parametrize("variant", COMM_VARIANTS[1:], ids=["fp16", "sym", "fp16+sym"])
    @pytest.mark.parametrize("config", CONFIGS)
    def test_graph_matches_sync_comm_variants(self, config, variant):
        """Compressed and triangular-packed wire formats change the payload,
        never the math — graph and sync stay equivalent under both."""
        kw = _strategy_kw(config, 4) | variant
        sync = run_hybrid(4, steps=2, scheduler="sync", **kw)
        graph = run_hybrid(4, steps=2, scheduler="graph", **kw)
        for key in sync:
            np.testing.assert_allclose(
                graph[key], sync[key], atol=1e-6, rtol=1e-6, err_msg=f"{config}:{key}"
            )

    @pytest.mark.parametrize("world_size", [2, 7])
    @pytest.mark.parametrize("config", ["comm-opt", "hybrid-0.5"])
    def test_graph_matches_sync_fp16_sym_other_worlds(self, world_size, config):
        kw = _strategy_kw(config, world_size)
        kw.update(comm_dtype="fp16", symmetric_comm=True)
        sync = run_hybrid(world_size, steps=2, scheduler="sync", **kw)
        graph = run_hybrid(world_size, steps=2, scheduler="graph", **kw)
        for key in sync:
            np.testing.assert_allclose(
                graph[key], sync[key], atol=1e-6, rtol=1e-6, err_msg=key
            )


class TestPlanValidity:
    @staticmethod
    def _capture(kfac, model):
        """One forward/backward so factors exist (the wire partition is
        derived from their dtypes)."""
        from repro.nn.loss import CrossEntropyLoss

        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=8).astype(np.int64)
        loss = CrossEntropyLoss()
        model.zero_grad()
        loss(model(x), y)
        model.backward(loss.backward())
        for layer in kfac.layers:
            layer.update_factors(kfac.hp.factor_decay)

    def _plan(self, world_size=4, rank=0, scheduler="graph", **kw):
        model = build_tiny_cnn(seed=1)
        kfac = KFAC(model, rank=rank, world_size=world_size, scheduler=scheduler, **kw)
        self._capture(kfac, model)
        return kfac.build_plan()

    @pytest.mark.parametrize("config", CONFIGS)
    def test_plan_is_valid_dag(self, config):
        plan = self._plan(**_strategy_kw(config, 4))
        plan.graph.validate()  # acyclic, no dangling deps
        lint_schedule(plan.graph, plan.schedule)

    @pytest.mark.parametrize("config", CONFIGS)
    def test_precondition_reachable_from_factor_comm(self, config):
        """Every layer's Precondition transitively depends on factor comm —
        no gradient is preconditioned with un-synchronized factors."""
        plan = self._plan(**_strategy_kw(config, 4))
        facs = [t.name for t in plan.graph.tasks if t.kind == "FactorComm"]
        pres = [t.name for t in plan.graph.tasks if t.kind == "Precondition"]
        assert facs and pres
        for pre in pres:
            assert any(plan.graph.reachable(f, pre) for f in facs), pre

    def test_topo_order_deterministic_and_rank_independent(self):
        """Collective launch order must agree across ranks: the plan's task
        names and topological order are identical on every rank."""
        plans = [
            self._plan(rank=r, strategy=HYBRID, grad_worker_frac=0.5) for r in range(4)
        ]
        ref_names = [t.name for t in plans[0].graph.tasks]
        ref_topo = plans[0].graph.topo_order()
        assert plans[0].graph.topo_order() == ref_topo  # repeatable
        for plan in plans[1:]:
            assert [t.name for t in plan.graph.tasks] == ref_names
            assert plan.graph.topo_order() == ref_topo
            assert plan.schedule == plans[0].schedule

    def test_sync_schedule_is_insertion_order(self):
        plan = self._plan(scheduler="sync")
        assert not plan.pipelined
        assert list(plan.schedule) == [t.name for t in plan.graph.tasks]

    def test_graph_schedule_launches_factors_first(self):
        plan = self._plan(bucket_bytes=1 << 8)  # force several buckets
        assert plan.pipelined
        assert len(plan.buckets) > 1
        n_fac = len(plan.buckets)
        assert all(name.startswith("factor_comm:") for name in plan.schedule[:n_fac])

    def test_plan_cached_per_update_flags(self):
        model = build_tiny_cnn(seed=1)
        kfac = KFAC(model, rank=0, world_size=2, scheduler="graph")
        self._capture(kfac, model)
        assert kfac.build_plan() is kfac.build_plan()
        assert kfac.build_plan() is not kfac.build_plan(update_second_order=False)


class TestLinter:
    def _graph(self):
        return TaskGraph(
            [Task("a", "Eig"), Task("b", "EigShare", deps=("a",)), Task("c", "Precondition", deps=("b",))]
        )

    def test_accepts_valid_schedule(self):
        lint_schedule(self._graph(), ["a", "b", "c"])

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchedulerError, match="duplicate"):
            lint_schedule(self._graph(), ["a", "a", "b", "c"])

    def test_rejects_unknown_task(self):
        with pytest.raises(SchedulerError, match="unknown task"):
            lint_schedule(self._graph(), ["a", "b", "c", "ghost"])

    def test_rejects_dep_order_violation(self):
        with pytest.raises(SchedulerError, match="before its dependency"):
            lint_schedule(self._graph(), ["b", "a", "c"])

    def test_rejects_unreachable_tasks(self):
        with pytest.raises(SchedulerError, match="unreachable"):
            lint_schedule(self._graph(), ["a", "b"])  # c never runs

    def test_graph_rejects_duplicate_add(self):
        g = TaskGraph([Task("a", "Eig")])
        with pytest.raises(SchedulerError, match="duplicate"):
            g.add(Task("a", "Eig"))

    def test_graph_rejects_cycle(self):
        g = TaskGraph(
            [Task("a", "Eig", deps=("b",)), Task("b", "EigShare", deps=("a",))]
        )
        with pytest.raises(SchedulerError, match="cycle"):
            g.topo_order()


class TestPlannerPolicies:
    def test_choose_bucket_bytes_targets_buckets(self):
        total = 64 << 20
        b = choose_bucket_bytes(total, world_size=8)
        assert 1 <= b <= total
        assert len(plan_buckets([b] * 4, b)) == 4

    def test_choose_bucket_bytes_latency_floor(self):
        """Tiny payloads never split: latency-bound buckets are wasteful."""
        b = choose_bucket_bytes(1 << 10, world_size=64)
        assert len(plan_buckets([256, 256, 256, 256], b)) == 1

    def test_build_step_plan_requires_wire_sizes(self):
        with pytest.raises(ValueError, match="wire_nbytes_list"):
            build_step_plan(
                strategy="comm-opt",
                world_size=2,
                factor_metas=("f0",),
                layer_names=("l0",),
            )


class TestHybridOverlapRegression:
    def test_group_share_overlaps_at_p4(self):
        """NEW capability: HYBRID group eigenbasis shares are schedulable
        nodes — eig_comm hides behind owned eigendecompositions instead of
        blocking, so hidden eig_comm seconds appear at P >= 4.  The retired
        hand-written hybrid pipeline always reported zero here."""
        _, w_sync = run_hybrid(
            4, steps=2, scheduler="sync",
            strategy=HYBRID, grad_worker_frac=0.5, return_world=True,
        )
        _, w_graph = run_hybrid(
            4, steps=2, scheduler="graph",
            strategy=HYBRID, grad_worker_frac=0.5, return_world=True,
        )
        assert w_sync.overlap.hidden("eig_comm") == 0.0
        assert w_graph.overlap.hidden("eig_comm") > 0.0
        # exposed + hidden add up: overlap never invents comm time
        assert w_graph.overlap.total("eig_comm") == pytest.approx(
            w_graph.overlap.exposed("eig_comm") + w_graph.overlap.hidden("eig_comm")
        )

    def test_trainer_history_reports_hidden_eig_comm(self, tiny_dataset):
        """The overlap surfaces end-to-end: TrainingHistory records hidden
        eig_comm seconds and the per-task-kind profile."""
        from repro.nn.resnet import resnet20_cifar

        tx, ty, vx, vy = tiny_dataset.splits
        cfg = TrainerConfig(
            world_size=4,
            batch_size=16,
            epochs=1,
            lr_schedule=ConstantSchedule(0.05),
            kfac=KFACHyperParams(
                strategy=HYBRID,
                grad_worker_frac=0.5,
                kfac_update_freq=2,
                fac_update_freq=1,
                damping=0.01,
                scheduler="graph",
            ),
        )
        tr = DataParallelTrainer(
            lambda rng: resnet20_cifar(rng, width_multiplier=0.25, num_classes=4),
            tx, ty, vx, vy, cfg,
        )
        hist = tr.train()
        assert hist.comm_hidden_seconds.get("eig_comm", 0.0) > 0.0
        profile = hist.comm_task_profile
        assert profile["EigShare"]["hidden"] > 0.0
        assert profile["FactorComm"]["exposed"] + profile["FactorComm"]["hidden"] > 0.0


class TestModeledSchedulerProfile:
    def _model(self):
        from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
        from repro.perfmodel.iteration import IterationModel
        from repro.perfmodel.specs import resnet_spec

        return IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE, 32)

    @pytest.mark.parametrize("p", [4, 16, 64])
    def test_graph_hybrid_share_strictly_below_retired_pipeline(self, p):
        m = self._model()
        legacy = m.stage_profile(p, pipelined=True, grad_worker_frac=0.5)
        graph = m.stage_profile(p, scheduler="graph", grad_worker_frac=0.5)
        assert graph.eig_tcomm_exposed < legacy.eig_tcomm_exposed
        assert graph.eig_tcomm_exposed >= 0.0

    def test_scheduler_sync_matches_unpipelined(self):
        m = self._model()
        for f in (None, 0.5):
            a = m.stage_profile(8, scheduler="sync", grad_worker_frac=f)
            b = m.stage_profile(8, grad_worker_frac=f)
            assert a == b

    def test_scheduler_graph_never_worse(self):
        m = self._model()
        from repro.perfmodel.iteration import KfacIntervals

        iv = KfacIntervals(10, 100)
        for strat, f in (("comm-opt", None), ("hybrid", 0.5), ("layer-wise", None)):
            for p in (4, 16, 64):
                g = m.kfac_iteration_time(p, strat, iv, grad_worker_frac=f, scheduler="graph")
                s = m.kfac_iteration_time(p, strat, iv, grad_worker_frac=f, scheduler="sync")
                assert g <= s + 1e-12, (strat, p)

    def test_scheduler_validated(self):
        m = self._model()
        with pytest.raises(ValueError, match="scheduler"):
            m.stage_profile(4, scheduler="bogus")
        with pytest.raises(ValueError, match="scheduler"):
            m.kfac_iteration_time(
                4, "comm-opt",
                __import__("repro.perfmodel.iteration", fromlist=["KfacIntervals"]).KfacIntervals(10, 100),
                scheduler="bogus",
            )
