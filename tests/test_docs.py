"""Documentation guarantees: docstrings, doctests, and the ``docs/`` tree.

Three invariants, enforced in CI (the ``docs`` job):

1. **Docstring audit** — every public symbol exported from
   ``repro.__init__`` or a subpackage ``__all__`` has a docstring with an
   *executable* example (a ``>>>`` doctest on the object itself, or — for
   classes — on one of its public methods).
2. **Doctests run** — every doctest in the ``repro`` source tree passes.
3. **Docs examples run + links resolve** — every fenced ``python`` block
   in ``docs/*.md`` (and the README) executes, and every intra-repo link
   or backticked file path in the docs points at a file that exists.
"""

from __future__ import annotations

import doctest
import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

PACKAGES = [
    "repro",
    "repro.approx",
    "repro.comm",
    "repro.core",
    "repro.data",
    "repro.elastic",
    "repro.experiments",
    "repro.nn",
    "repro.obs",
    "repro.optim",
    "repro.parallel",
    "repro.perfmodel",
    "repro.sched",
    "repro.precision",
    "repro.tensor",
    "repro.utils",
]

#: doctest semantics for the whole repo: ELLIPSIS for long reprs
DOCTEST_FLAGS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE

_CONSTANT_TYPES = (str, bytes, int, float, bool, tuple, list, dict, frozenset)


def iter_exports():
    """Yield ``(dotted_name, object)`` for every package-level export."""
    seen: set[int] = set()
    for pkg in PACKAGES:
        mod = importlib.import_module(pkg)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if isinstance(obj, _CONSTANT_TYPES):
                continue  # plain constants (version strings, presets dicts)
            if id(obj) in seen:
                continue  # re-exported under several packages
            seen.add(id(obj))
            yield f"{pkg}.{name}", obj


EXPORTS = list(iter_exports())


def _doc_of(obj) -> str:
    return inspect.getdoc(obj) or ""


def _has_example(obj) -> bool:
    if ">>>" in _doc_of(obj):
        return True
    cls = obj if inspect.isclass(obj) else type(obj)
    if cls is not obj and not inspect.isclass(obj) and ">>>" in _doc_of(cls):
        return True
    if inspect.isclass(obj) or not callable(obj):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_") or not callable(member):
                continue
            if ">>>" in (getattr(member, "__doc__", None) or ""):
                return True
    return False


class TestDocstringAudit:
    @pytest.mark.parametrize("dotted,obj", EXPORTS, ids=[d for d, _ in EXPORTS])
    def test_export_has_docstring(self, dotted, obj):
        assert _doc_of(obj).strip(), f"{dotted} has no docstring"

    @pytest.mark.parametrize("dotted,obj", EXPORTS, ids=[d for d, _ in EXPORTS])
    def test_export_has_executable_example(self, dotted, obj):
        assert _has_example(obj), (
            f"{dotted} has no executable (>>>) example in its docstring "
            "or any public method docstring"
        )


ALL_MODULES = sorted(
    info.name for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


class TestDoctests:
    @pytest.mark.parametrize("modname", ALL_MODULES)
    def test_module_doctests_pass(self, modname):
        mod = importlib.import_module(modname)
        runner = doctest.DocTestRunner(optionflags=DOCTEST_FLAGS, verbose=False)
        attempted = 0
        for test in doctest.DocTestFinder(exclude_empty=True).find(
            mod, name=modname, module=mod
        ):
            runner.run(test)
            attempted += len(test.examples)
        assert runner.failures == 0, (
            f"{runner.failures} doctest failure(s) in {modname} "
            f"(of {attempted} examples); run "
            f"`python -m doctest -o ELLIPSIS src/{modname.replace('.', '/')}.py -v`"
        )

    def test_repro_tree_has_doctest_coverage(self):
        """The runner is not vacuous: the tree carries hundreds of examples."""
        total = 0
        finder = doctest.DocTestFinder(exclude_empty=True)
        for modname in ALL_MODULES:
            mod = importlib.import_module(modname)
            for test in finder.find(mod, name=modname, module=mod):
                total += len(test.examples)
        assert total > 200, f"expected a well-exampled tree, found {total} examples"


FENCE_RE = re.compile(r"```python\n(.*?)```", re.S)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PATH_RE = re.compile(r"`([\w.-]+(?:/[\w.-]+)+\.(?:py|md|yml))`")

DOC_PAGES = sorted(DOCS.glob("*.md")) if DOCS.is_dir() else []


class TestDocsTree:
    def test_docs_tree_exists_with_required_pages(self):
        required = {
            "approximation.md",
            "architecture.md",
            "placement.md",
            "precision.md",
            "communication.md",
            "perfmodel.md",
            "scheduler.md",
            "elasticity.md",
            "workloads.md",
        }
        present = {p.name for p in DOC_PAGES}
        assert required <= present, f"missing docs pages: {required - present}"

    @pytest.mark.parametrize("page", DOC_PAGES, ids=[p.name for p in DOC_PAGES])
    def test_docs_fenced_python_blocks_execute(self, page):
        """Every ```python block in a docs page is a runnable example.

        Blocks on one page share a namespace, so later blocks may build on
        earlier ones (tutorial style).
        """
        blocks = FENCE_RE.findall(page.read_text())
        assert blocks, f"{page.name} has no executable python examples"
        namespace: dict = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"{page.name}[block {i}]", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"{page.name} block {i} raised {exc!r}:\n{block}")

    @pytest.mark.parametrize(
        "page",
        DOC_PAGES + [REPO / "README.md"],
        ids=[p.name for p in DOC_PAGES] + ["README.md"],
    )
    def test_intra_doc_links_resolve(self, page):
        """Markdown links and backticked repo paths must point at real files."""
        text = page.read_text()
        missing = []
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue  # pure anchor
            if not ((page.parent / path).exists() or (REPO / path).exists()):
                missing.append(target)
        for path in PATH_RE.findall(text):
            if not ((page.parent / path).exists() or (REPO / path).exists()):
                missing.append(path)
        assert not missing, f"{page.name} references missing files: {missing}"

    def test_readme_links_into_docs(self):
        text = (REPO / "README.md").read_text()
        assert "docs/architecture.md" in text and "docs/placement.md" in text
