"""Property-based tests for the transformer workload capture tier.

Three promises of the new layer families, driven by Hypothesis over
shapes and index multisets a hand-written suite would miss:

1. **Gather fast path** — ``embedding_factor_A`` (index counts, never a
   one-hot matrix) is *bitwise equal* to the dense one-hot reference for
   arbitrary ``(vocab, batch shape, index multiset)``, with and without
   a workspace arena, and validates its inputs;
2. **Attention capture** — the A/G factors K-FAC's hooks capture for the
   Q/K/V/out projections inside :class:`MultiHeadAttention` are bitwise
   equal to manually-unrolled Linear capture: the same
   ``linear_factor_A`` / ``linear_factor_G`` applied to token rows
   recomputed from the raw weights with plain numpy;
3. **Parameter packing** — the Embedding (transposed table) and
   LayerNorm (diagonal + bias column) grad-matrix accessors round-trip
   losslessly and touch only the feasible entries.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factors import (
    embedding_factor_A,
    embedding_factor_A_dense,
    linear_factor_A,
    linear_factor_G,
)
from repro.core.layers import EmbeddingKFACLayer, LayerNormKFACLayer
from repro.core.preconditioner import KFAC
from repro.nn.loss import softmax
from repro.nn.transformer import Embedding, LayerNorm, MultiHeadAttention
from repro.tensor.amp import amp_matmul
from repro.tensor.workspace import Workspace


# ---------------------------------------------------------------------------
# 1. embedding gather fast path == dense one-hot reference
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_gather_fast_path_equals_dense_onehot(data):
    vocab = data.draw(st.integers(1, 64), label="vocab")
    rows = data.draw(st.integers(1, 24), label="rows")
    cols = data.draw(st.integers(0, 5), label="cols")  # 0 -> 1-D indices
    n = rows * max(cols, 1)
    flat = data.draw(
        st.lists(st.integers(0, vocab - 1), min_size=n, max_size=n),
        label="indices",
    )
    indices = np.asarray(flat, dtype=np.int64)
    if cols:
        indices = indices.reshape(rows, cols)

    fast = embedding_factor_A(indices, vocab)
    dense = embedding_factor_A_dense(indices, vocab)
    # 0/1 products and integer counts are exact in fp32: bitwise, not close
    np.testing.assert_array_equal(fast, dense)

    # exactly diagonal, trace == multiset size / rows
    off = fast - np.diag(np.diag(fast))
    assert float(np.abs(off).max()) == 0.0
    counts = np.bincount(indices.ravel(), minlength=vocab)
    np.testing.assert_array_equal(
        np.diag(fast), (counts / indices.size).astype(fast.dtype)
    )

    # the workspace arena path returns the same values
    ws = Workspace()
    via_ws = embedding_factor_A(indices, vocab, workspace=ws)
    np.testing.assert_array_equal(via_ws, fast)


@settings(max_examples=30, deadline=None)
@given(
    vocab=st.integers(1, 32),
    bad=st.sampled_from(["low", "high", "float", "empty"]),
)
def test_embedding_factor_validates_inputs(vocab, bad):
    if bad == "low":
        indices = np.array([0, -1])
    elif bad == "high":
        indices = np.array([0, vocab])
    elif bad == "float":
        indices = np.array([0.0, 1.0])
    else:
        indices = np.array([], dtype=np.int64)
    with pytest.raises(ValueError):
        embedding_factor_A(indices, vocab)


# ---------------------------------------------------------------------------
# 2. attention projections capture as manually-unrolled Linears
# ---------------------------------------------------------------------------
def _manual_linear(lin, rows):
    """Mirror Linear.forward on raw arrays (same amp_matmul, same order)."""
    y = amp_matmul(rows, lin.weight.data.T)
    if lin.bias is not None:
        y += lin.bias.data
    return y


def _manual_attention_rows(mha, x, g):
    """Re-derive every projection's input and output-gradient rows with
    plain numpy from the module's weights — no hooks, no handlers."""
    n, t, d = x.shape
    h, hd = mha.num_heads, mha.head_dim

    def split(a):
        return a.reshape(n, t, h, hd).transpose(0, 2, 1, 3)

    def merge(a):
        return np.ascontiguousarray(a.transpose(0, 2, 1, 3)).reshape(n * t, d)

    flat = np.ascontiguousarray(x.reshape(n * t, d))
    q = split(_manual_linear(mha.q_proj, flat))
    k = split(_manual_linear(mha.k_proj, flat))
    v = split(_manual_linear(mha.v_proj, flat))
    scale = 1.0 / np.sqrt(hd)
    attn = softmax(np.matmul(q, k.transpose(0, 1, 3, 2)) * scale)
    ctx_flat = merge(np.matmul(attn, v))

    g_flat = np.ascontiguousarray(g.reshape(n * t, d))
    dctx = split(amp_matmul(g_flat, mha.out_proj.weight.data))
    dattn = np.matmul(dctx, v.transpose(0, 1, 3, 2))
    dv = np.matmul(attn.transpose(0, 1, 3, 2), dctx)
    dscores = attn * (dattn - (dattn * attn).sum(axis=-1, keepdims=True))
    dscores = dscores * scale
    dq = np.matmul(dscores, k)
    dk = np.matmul(dscores.transpose(0, 1, 3, 2), q)

    a_rows = {"q_proj": flat, "k_proj": flat, "v_proj": flat, "out_proj": ctx_flat}
    g_rows = {
        "q_proj": merge(dq),
        "k_proj": merge(dk),
        "v_proj": merge(dv),
        "out_proj": g_flat,
    }
    return a_rows, g_rows


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(1, 4),
    t=st.integers(1, 5),
    num_heads=st.sampled_from([1, 2, 4]),
    head_dim=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_attention_projection_factors_match_unrolled_linear(
    n, t, num_heads, head_dim, seed
):
    dim = num_heads * head_dim
    rng = np.random.default_rng(seed)
    mha = MultiHeadAttention(dim, num_heads, rng=rng)
    kfac = KFAC(mha)  # hooks capture on the first forward/backward
    x = rng.normal(size=(n, t, dim)).astype(np.float32)
    g = rng.normal(size=(n, t, dim)).astype(np.float32)

    mha(x)
    mha.backprop(g)

    a_rows, g_rows = _manual_attention_rows(mha, x, g)
    assert {l.name for l in kfac.layers} == set(a_rows)
    for handler in kfac.layers:
        expect_A = linear_factor_A(a_rows[handler.name], has_bias=True)
        np.testing.assert_array_equal(
            handler.compute_A(), expect_A,
            err_msg=f"{handler.name} A-factor != unrolled Linear capture",
        )
        expect_G = linear_factor_G(g_rows[handler.name], batch_averaged=True)
        np.testing.assert_array_equal(
            handler.compute_G(), expect_G,
            err_msg=f"{handler.name} G-factor != unrolled Linear capture",
        )


@settings(max_examples=15, deadline=None)
@given(
    rows=st.integers(1, 6),
    t=st.integers(1, 4),
    d=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
def test_layernorm_capture_uses_normalized_activations(rows, t, d, seed):
    rng = np.random.default_rng(seed)
    ln = LayerNorm(d)
    kfac = KFAC(ln)
    x = rng.normal(scale=2.0, size=(rows, t, d)).astype(np.float32)
    g = rng.normal(size=(rows, t, d)).astype(np.float32)
    ln(x)
    ln.backprop(g)

    # the manual x_hat: same ops, same order as LayerNorm.forward
    mean = x.mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(x.var(axis=-1, keepdims=True) + ln.eps)
    x_hat = (x - mean) * inv_std

    (handler,) = kfac.layers
    np.testing.assert_array_equal(handler.a_input, x_hat)
    expect_A = linear_factor_A(
        np.ascontiguousarray(x_hat.reshape(-1, d)), has_bias=True
    )
    np.testing.assert_array_equal(handler.compute_A(), expect_A)
    expect_G = linear_factor_G(
        np.ascontiguousarray(g.reshape(-1, d)), batch_averaged=True
    )
    np.testing.assert_array_equal(handler.compute_G(), expect_G)


# ---------------------------------------------------------------------------
# 3. grad-matrix packing round-trips
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    vocab=st.integers(1, 32),
    dim=st.integers(1, 16),
    seed=st.integers(0, 2**16),
)
def test_embedding_grad_matrix_roundtrip(vocab, dim, seed):
    rng = np.random.default_rng(seed)
    emb = Embedding(vocab, dim, rng=rng)
    handler = EmbeddingKFACLayer("emb", emb)
    assert (handler.g_dim, handler.a_dim) == (dim, vocab)

    grad = rng.normal(size=(vocab, dim)).astype(np.float32)
    emb.weight.grad[...] = grad
    mat = handler.get_grad_matrix()
    assert mat.shape == (dim, vocab)
    np.testing.assert_array_equal(mat, grad.T)

    new = rng.normal(size=(dim, vocab)).astype(np.float32)
    handler.set_grad_matrix(new)
    np.testing.assert_array_equal(emb.weight.grad, new.T)
    if vocab != dim:
        with pytest.raises(ValueError):
            handler.set_grad_matrix(new.T.copy())  # wrong orientation rejected


@settings(max_examples=40, deadline=None)
@given(d=st.integers(1, 24), seed=st.integers(0, 2**16))
def test_layernorm_grad_matrix_roundtrip(d, seed):
    rng = np.random.default_rng(seed)
    ln = LayerNorm(d)
    handler = LayerNormKFACLayer("ln", ln)
    assert (handler.g_dim, handler.a_dim) == (d, d + 1)

    w_grad = rng.normal(size=d).astype(np.float32)
    b_grad = rng.normal(size=d).astype(np.float32)
    ln.weight.grad[...] = w_grad
    ln.bias.grad[...] = b_grad
    mat = handler.get_grad_matrix()
    idx = np.arange(d)
    np.testing.assert_array_equal(mat[idx, idx], w_grad)
    np.testing.assert_array_equal(mat[:, d], b_grad)
    # only the feasible set is populated: off-diagonal weight part is zero
    off = mat[:, :d].copy()
    off[idx, idx] = 0.0
    assert float(np.abs(off).max()) == 0.0

    # scattering a full natural-gradient matrix keeps only the feasible set
    full = rng.normal(size=(d, d + 1)).astype(np.float32)
    handler.set_grad_matrix(full)
    np.testing.assert_array_equal(ln.weight.grad, full[idx, idx])
    np.testing.assert_array_equal(ln.bias.grad, full[:, d])
    if d > 1:
        with pytest.raises(ValueError):
            handler.set_grad_matrix(full.T.copy())
