"""Pipelined (async) K-FAC execution and comm-path dtype preservation.

Covers the correctness claims of the async engine:

1. pipelining is *semantics-preserving* — PhaseController with overlap
   on/off produces identical preconditioned gradients (COMM_OPT, both
   second-order modes, both drivers);
2. the comm path preserves the caller's dtype — a float64 model's
   multi-worker COMM_OPT step matches the single-worker path bit-for-bit
   in dtype (the historical ``pack_arrays`` float32 hard-code silently
   downcast factors crossing worker boundaries);
3. overlap accounting: async runs report hidden communication seconds,
   sync runs never do;
4. scheduler frequency changes at epoch boundaries never desync hook
   capture from ``update_factors``;
5. checkpoint save/resume mid ``kfac_update_freq`` interval under
   LAYER_WISE + greedy assignment resumes bit-equivalently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.backend import World
from repro.comm.horovod import HorovodContext
from repro.core.distributed import PhaseController, SPMDDriver
from repro.core.preconditioner import COMM_OPT, LAYER_WISE, KFAC
from repro.core.schedule import KFACParamScheduler
from repro.nn.container import Sequential
from repro.nn.layers import Linear, ReLU
from repro.nn.loss import CrossEntropyLoss
from tests.conftest import build_tiny_cnn


def build_f64_mlp(seed: int = 11, num_classes: int = 3):
    """A small all-Linear model promoted to float64 end to end."""
    r = np.random.default_rng(seed)
    model = Sequential(Linear(6, 8, rng=r), ReLU(), Linear(8, num_classes, rng=r))
    for p in model.parameters():
        p.data = p.data.astype(np.float64)
        p.grad = np.zeros_like(p.data)
    return model


def _mlp_data(n: int = 16, dtype=np.float64):
    rng = np.random.default_rng(7)
    x = rng.normal(size=(n, 6)).astype(dtype)
    y = rng.integers(0, 3, size=n).astype(np.int64)
    return x, y


def run_phase_preconditioned(
    world_size: int,
    steps: int = 3,
    scheduler: str = "sync",
    bucket_bytes: int = 1 << 12,
    use_eigen: bool = True,
    assignment: str = "round_robin",
    model_factory=build_tiny_cnn,
    data=None,
    seed: int = 42,
):
    """Train with the PhaseController; return rank-0's final preconditioned
    gradients (captured after KFAC.step, before the optimizer update) and
    the world (for overlap accounting assertions)."""
    world = World(world_size)
    models = [model_factory(seed) for _ in range(world_size)]
    kfacs = [
        KFAC(
            m,
            rank=r,
            world_size=world_size,
            damping=0.01,
            fac_update_freq=1,
            kfac_update_freq=1,
            use_eigen_decomp=use_eigen,
            assignment=assignment,
            scheduler=scheduler,
            bucket_bytes=bucket_bytes,
        )
        for r, m in enumerate(models)
    ]
    controller = PhaseController(kfacs, world)
    losses = [CrossEntropyLoss() for _ in range(world_size)]
    if data is None:
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=16).astype(np.int64)
    else:
        x, y = data
    shard = len(x) // world_size
    grads = None
    for _ in range(steps):
        for r in range(world_size):
            models[r].zero_grad()
            out = models[r](x[r * shard : (r + 1) * shard])
            losses[r](out, y[r * shard : (r + 1) * shard])
            models[r].backward(losses[r].backward())
        params = [list(m.parameters()) for m in models]
        for j in range(len(params[0])):
            reduced = world.allreduce([params[r][j].grad for r in range(world_size)])
            for r in range(world_size):
                params[r][j].grad[...] = reduced[r]
        controller.step()
        grads = {n: p.grad.copy() for n, p in models[0].named_parameters()}
        # keep weights moving so later steps see fresh factors
        for m in models:
            for p in m.parameters():
                p.data -= 0.05 * p.grad
    return grads, world


class TestPipelinedEquivalence:
    @pytest.mark.parametrize("world_size", [2, 4])
    def test_overlap_on_off_identical_preconditioned_grads(self, world_size):
        """One sync and one async step from identical state: same dtype,
        gradients equal within atol 1e-6 (the acceptance bound)."""
        sync, _ = run_phase_preconditioned(world_size, steps=1, scheduler="sync")
        pipe, _ = run_phase_preconditioned(world_size, steps=1, scheduler="graph")
        for key in sync:
            assert pipe[key].dtype == sync[key].dtype
            np.testing.assert_allclose(
                pipe[key], sync[key], atol=1e-6, rtol=1e-6, err_msg=key
            )

    @pytest.mark.parametrize("world_size", [2, 4])
    def test_overlap_trajectory_stays_close(self, world_size):
        """Multi-step trajectories only drift by float32 reassociation
        noise (bucketed ring reductions re-order additions)."""
        sync, _ = run_phase_preconditioned(world_size, steps=3, scheduler="sync")
        pipe, _ = run_phase_preconditioned(world_size, steps=3, scheduler="graph")
        for key in sync:
            np.testing.assert_allclose(
                pipe[key], sync[key], atol=2e-5, rtol=2e-4, err_msg=key
            )

    def test_overlap_with_inverse_mode(self):
        sync, _ = run_phase_preconditioned(2, steps=1, use_eigen=False, scheduler="sync")
        pipe, _ = run_phase_preconditioned(2, steps=1, use_eigen=False, scheduler="graph")
        for key in sync:
            np.testing.assert_allclose(pipe[key], sync[key], atol=1e-6, rtol=1e-6)

    def test_overlap_with_greedy_assignment(self):
        sync, _ = run_phase_preconditioned(3, steps=1, assignment="greedy", scheduler="sync")
        pipe, _ = run_phase_preconditioned(3, steps=1, assignment="greedy", scheduler="graph")
        for key in sync:
            np.testing.assert_allclose(pipe[key], sync[key], atol=1e-6, rtol=1e-6)

    def test_single_bucket_pipeline_matches_sync(self):
        """A bucket big enough for everything still exercises launch/wait."""
        sync, _ = run_phase_preconditioned(2, scheduler="sync")
        pipe, _ = run_phase_preconditioned(2, scheduler="graph", bucket_bytes=1 << 30)
        for key in sync:
            np.testing.assert_allclose(pipe[key], sync[key], atol=1e-6, rtol=1e-6)

    def test_async_reports_hidden_comm(self):
        _, w_sync = run_phase_preconditioned(4, scheduler="sync")
        _, w_pipe = run_phase_preconditioned(4, scheduler="graph")
        assert w_sync.overlap.total_hidden() == 0.0
        assert w_pipe.overlap.total_hidden() > 0.0
        # exposed + hidden must equal the phase's total accounted comm
        for phase in ("factor_comm", "eig_comm"):
            total = w_pipe.overlap.total(phase)
            assert total > 0.0
            assert w_pipe.timers.total(phase) == pytest.approx(
                w_pipe.overlap.exposed(phase)
            )

    def test_spmd_async_matches_phase_async(self):
        phase, _ = run_phase_preconditioned(2, scheduler="graph")

        world = World(2)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=16).astype(np.int64)

        def program(view):
            model = build_tiny_cnn(seed=42)
            kfac = KFAC(
                model,
                rank=view.rank,
                world_size=2,
                damping=0.01,
                fac_update_freq=1,
                kfac_update_freq=1,
                scheduler="graph",
                bucket_bytes=1 << 12,
            )
            drv = SPMDDriver(kfac, HorovodContext(view))
            loss_fn = CrossEntropyLoss()
            xs, ys = x[view.rank * 8 : (view.rank + 1) * 8], y[view.rank * 8 : (view.rank + 1) * 8]
            grads = None
            for step in range(3):
                model.zero_grad()
                out = model(xs)
                loss_fn(out, ys)
                model.backward(loss_fn.backward())
                for name, p in model.named_parameters():
                    p.grad[...] = view.allreduce(
                        p.grad, name=f"g:{name}:{step}", op="average"
                    )
                drv.step()
                grads = {n: p.grad.copy() for n, p in model.named_parameters()}
                for p in model.parameters():
                    p.data -= 0.05 * p.grad
            return grads

        spmd = world.run_spmd(program, timeout=60)[0]
        for key in phase:
            np.testing.assert_allclose(spmd[key], phase[key], atol=1e-6, rtol=1e-6)


class TestCommDtypePreservation:
    """Regression: pack_arrays used to hard-code float32 transport."""

    @pytest.mark.parametrize("scheduler", ["sync", "graph"])
    def test_float64_multi_worker_matches_single_worker(self, scheduler):
        data = _mlp_data()

        # single-worker reference (no communication at all)
        model = build_f64_mlp()
        kfac = KFAC(model, damping=0.01, fac_update_freq=1, kfac_update_freq=1)
        loss = CrossEntropyLoss()
        x, y = data
        model.zero_grad()
        out = model(x)
        loss(out, y)
        model.backward(loss.backward())
        kfac.step()
        ref = {n: p.grad.copy() for n, p in model.named_parameters()}

        dist, _ = run_phase_preconditioned(
            2,
            steps=1,
            scheduler=scheduler,
            model_factory=lambda seed: build_f64_mlp(),
            data=data,
        )
        for key in ref:
            assert ref[key].dtype == np.float64
            # bit-identical dtype: the collective round trip must not downcast
            assert dist[key].dtype == np.float64, (
                f"{key}: comm path downcast float64 -> {dist[key].dtype}"
            )
            np.testing.assert_allclose(dist[key], ref[key], atol=1e-10, rtol=1e-10)

    def test_float64_replicas_stay_identical(self):
        """All replicas agree after a float64 COMM_OPT pipelined step."""
        data = _mlp_data()
        world = World(2)
        models = [build_f64_mlp() for _ in range(2)]
        kfacs = [
            KFAC(m, rank=r, world_size=2, damping=0.01, scheduler="graph",
                 bucket_bytes=256, fac_update_freq=1, kfac_update_freq=1)
            for r, m in enumerate(models)
        ]
        controller = PhaseController(kfacs, world)
        losses = [CrossEntropyLoss() for _ in range(2)]
        x, y = data
        for r in range(2):
            models[r].zero_grad()
            out = models[r](x[r * 8 : (r + 1) * 8])
            losses[r](out, y[r * 8 : (r + 1) * 8])
            models[r].backward(losses[r].backward())
        params = [list(m.parameters()) for m in models]
        for j in range(len(params[0])):
            reduced = world.allreduce([params[r][j].grad for r in range(2)])
            for r in range(2):
                params[r][j].grad[...] = reduced[r]
        controller.step()
        g0 = {n: p.grad for n, p in models[0].named_parameters()}
        g1 = {n: p.grad for n, p in models[1].named_parameters()}
        for key in g0:
            assert g0[key].dtype == np.float64
            np.testing.assert_array_equal(g0[key], g1[key])


class TestSchedulerCaptureSync:
    def test_freq_changes_never_desync_capture_from_update(self):
        """Hook capture and ``update_factors`` must agree at every step even
        as the scheduler rescales both update intervals at epoch bounds."""
        model = build_tiny_cnn(seed=3)
        kfac = KFAC(model, damping=0.01, fac_update_freq=2, kfac_update_freq=4)
        sched = KFACParamScheduler(
            kfac, update_freq_alpha=3.0, update_freq_schedule=[1, 3]
        )
        loss = CrossEntropyLoss()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=8).astype(np.int64)
        expected_updates = 0
        for epoch in range(5):
            sched.step(epoch)
            for _ in range(4):
                will_update = kfac.steps % kfac.fac_update_freq == 0
                expected_updates += int(will_update)
                model.zero_grad()
                out = model(x)
                loss(out, y)
                model.backward(loss.backward())
                kfac.step()  # raises if capture and update disagree
                for layer in kfac.layers:
                    # captures are consumed by the update or never taken —
                    # a lingering capture means capture/update desynced
                    assert layer.a_input is None and layer.g_output is None
        assert kfac.n_factor_updates == expected_updates
        # the schedule actually changed the interval (guard against a
        # vacuous test)
        assert kfac.fac_update_freq != 2

    def test_mid_interval_freq_change_still_consistent(self):
        """Changing frequencies between iterations (not just epochs) keeps
        the capture decision and the update decision in lockstep."""
        model = build_tiny_cnn(seed=4)
        kfac = KFAC(model, damping=0.01, fac_update_freq=1, kfac_update_freq=2)
        loss = CrossEntropyLoss()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(8, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=8).astype(np.int64)
        for step in range(6):
            if step == 3:
                kfac.fac_update_freq = 2
                kfac.kfac_update_freq = 4
            model.zero_grad()
            out = model(x)
            loss(out, y)
            model.backward(loss.backward())
            kfac.step()
            for layer in kfac.layers:
                assert layer.a_input is None and layer.g_output is None


class TestMidIntervalCheckpoint:
    def test_layer_wise_greedy_resume_mid_interval(self):
        """Save/resume between two second-order refreshes (step 2 of a
        kfac_update_freq=3 interval) under LAYER_WISE + greedy."""
        kw = dict(
            damping=0.01,
            fac_update_freq=1,
            kfac_update_freq=3,
            strategy=LAYER_WISE,
            assignment="greedy",
        )
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=8).astype(np.int64)
        loss = CrossEntropyLoss()

        def one_step(model, kfac):
            model.zero_grad()
            out = model(x)
            loss(out, y)
            model.backward(loss.backward())
            kfac.step()
            for p in model.parameters():
                p.data -= 0.1 * p.grad

        m1 = build_tiny_cnn(seed=5)
        k1 = KFAC(m1, **kw)
        for _ in range(5):
            one_step(m1, k1)

        m2 = build_tiny_cnn(seed=5)
        k2 = KFAC(m2, **kw)
        for _ in range(2):  # stop mid-interval: last refresh was step 0
            one_step(m2, k2)
        model_state = m2.state_dict()
        kfac_state = k2.state_dict()

        m3 = build_tiny_cnn(seed=99)  # different init, fully overwritten
        m3.load_state_dict(model_state)
        k3 = KFAC(m3, **kw)
        k3.load_state_dict(kfac_state)
        assert k3.steps == 2  # resumes inside the interval, not at a bound
        for _ in range(3):
            one_step(m3, k3)

        for (n1, p1), (_, p3) in zip(m1.named_parameters(), m3.named_parameters()):
            np.testing.assert_allclose(
                p3.data, p1.data, rtol=1e-6, atol=1e-7, err_msg=n1
            )
