"""Synthetic datasets, loaders, sharding, augmentation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.augment import augment_batch, random_crop, random_flip
from repro.data.loader import DataLoader, batch_iterator
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec, cifar10_like, imagenet_like
from repro.parallel.sharding import ShardedIndexSampler, shard_indices


class TestSynthetic:
    def test_shapes_and_dtypes(self):
        ds = cifar10_like(n_train=64, n_val=32, image_size=8)
        tx, ty, vx, vy = ds.splits
        assert tx.shape == (64, 3, 8, 8) and tx.dtype == np.float32
        assert ty.shape == (64,) and ty.dtype == np.int64
        assert vx.shape == (32, 3, 8, 8)

    def test_deterministic_in_seed(self):
        a = cifar10_like(n_train=32, n_val=16, image_size=8, seed=3)
        b = cifar10_like(n_train=32, n_val=16, image_size=8, seed=3)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.train_y, b.train_y)

    def test_different_seeds_differ(self):
        a = cifar10_like(n_train=32, n_val=16, image_size=8, seed=3)
        b = cifar10_like(n_train=32, n_val=16, image_size=8, seed=4)
        assert not np.allclose(a.train_x, b.train_x)

    def test_all_classes_present(self):
        ds = cifar10_like(n_train=500, n_val=100, image_size=8)
        assert set(np.unique(ds.train_y)) == set(range(10))

    def test_channel_conditioning_applied(self):
        spec = SyntheticSpec(
            n_train=64, n_val=16, image_size=8, conditioning=100.0, noise=0.0,
            max_shift=0, amplitude_jitter=0.0,
        )
        ds = SyntheticImageDataset(spec)
        stds = ds.train_x.std(axis=(0, 2, 3))
        assert stds[-1] / stds[0] > 10  # wide per-channel scale spread

    def test_class_pairing_makes_pairs_similar(self):
        spec = SyntheticSpec(
            n_train=32, n_val=16, num_classes=10, image_size=8,
            class_pairing=0.2, noise=0.0, max_shift=0,
        )
        ds = SyntheticImageDataset(spec)
        t = ds.templates
        within = np.linalg.norm(t[0] - t[1])
        across = np.linalg.norm(t[0] - t[2])
        assert within < across

    def test_class_pairing_requires_even_classes(self):
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=9, class_pairing=0.2)

    def test_imagenet_like_defaults(self):
        ds = imagenet_like(n_train=40, n_val=20, num_classes=4, image_size=12)
        assert ds.train_x.shape == (40, 3, 12, 12)
        assert ds.spec.num_classes == 4

    def test_learnable_signal_exists(self):
        """A nearest-template classifier beats chance on the val split."""
        ds = cifar10_like(n_train=50, n_val=200, image_size=10, noise=0.4, seed=1)
        t = ds.templates.reshape(10, -1)
        v = ds.val_x.reshape(len(ds.val_x), -1)
        pred = np.argmax(v @ t.T, axis=1)
        assert (pred == ds.val_y).mean() > 0.5


class TestLoader:
    def test_batches_cover_dataset(self, rng):
        x = rng.normal(size=(25, 2)).astype(np.float32)
        y = np.arange(25)
        loader = DataLoader(x, y, batch_size=8, shuffle=False)
        seen = np.concatenate([yb for _, yb in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(25))
        assert len(loader) == 4

    def test_drop_last(self, rng):
        x = rng.normal(size=(25, 2)).astype(np.float32)
        loader = DataLoader(x, np.arange(25), batch_size=8, drop_last=True)
        assert len(loader) == 3
        assert sum(len(b) for b, _ in loader) == 24

    def test_shuffle_changes_with_epoch(self, rng):
        x = rng.normal(size=(16, 1)).astype(np.float32)
        loader = DataLoader(x, np.arange(16), batch_size=16, seed=1)
        first = next(iter(loader))[1].copy()
        loader.set_epoch(1)
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_shuffle_deterministic_per_epoch(self, rng):
        x = rng.normal(size=(16, 1)).astype(np.float32)
        l1 = DataLoader(x, np.arange(16), batch_size=16, seed=1)
        l2 = DataLoader(x, np.arange(16), batch_size=16, seed=1)
        np.testing.assert_array_equal(next(iter(l1))[1], next(iter(l2))[1])

    def test_batch_iterator_validation(self, rng):
        with pytest.raises(ValueError):
            list(batch_iterator(np.zeros((3, 1)), np.zeros(4), np.arange(3), 2))


class TestSharding:
    def test_disjoint_cover(self):
        n, p = 103, 4
        all_idx = np.concatenate([shard_indices(n, p, r, seed=0, epoch=0) for r in range(p)])
        # padded to equal size; union must cover everything
        assert set(all_idx.tolist()) == set(range(n))
        per = (n + p - 1) // p
        assert all(
            len(shard_indices(n, p, r, seed=0, epoch=0)) == per for r in range(p)
        )

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 300), p=st.integers(1, 8), epoch=st.integers(0, 5))
    def test_property_equal_sizes_and_cover(self, n, p, epoch):
        shards = [shard_indices(n, p, r, seed=3, epoch=epoch) for r in range(p)]
        sizes = {len(s) for s in shards}
        assert len(sizes) == 1
        assert set(np.concatenate(shards).tolist()) == set(range(n))

    def test_epoch_changes_permutation(self):
        a = shard_indices(50, 2, 0, seed=0, epoch=0)
        b = shard_indices(50, 2, 0, seed=0, epoch=1)
        assert not np.array_equal(a, b)

    def test_no_shuffle_is_strided(self):
        """DistributedSampler semantics: rank r takes indices r, r+P, ..."""
        idx = shard_indices(10, 2, 1, seed=0, epoch=0, shuffle=False)
        np.testing.assert_array_equal(idx, [1, 3, 5, 7, 9])

    def test_union_of_rank_batches_is_global_batch(self):
        """First B indices of every rank together == first P*B of the
        global permutation (the property exact DDP equivalence needs)."""
        n, p, b = 64, 4, 4
        shards = [shard_indices(n, p, r, seed=2, epoch=0) for r in range(p)]
        union = np.concatenate([s[:b] for s in shards])
        rng = np.random.default_rng(np.random.SeedSequence((2, 0)))
        perm = rng.permutation(n)
        assert set(union.tolist()) == set(perm[: p * b].tolist())

    def test_sampler_wrapper(self):
        s = ShardedIndexSampler(20, 4, 2, seed=1)
        s.set_epoch(3)
        np.testing.assert_array_equal(
            s.indices(), shard_indices(20, 4, 2, seed=1, epoch=3)
        )
        assert len(s) == 5

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            shard_indices(10, 2, 2, seed=0, epoch=0)


class TestAugment:
    def test_crop_preserves_shape(self, rng):
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        out = random_crop(x, rng, padding=2)
        assert out.shape == x.shape

    def test_flip_probability_extremes(self, rng):
        x = rng.normal(size=(4, 3, 6, 6)).astype(np.float32)
        never = random_flip(x, rng, p=0.0)
        np.testing.assert_array_equal(never, x)
        always = random_flip(x, rng, p=1.0)
        np.testing.assert_array_equal(always, x[:, :, :, ::-1])

    def test_augment_batch_pipeline(self, rng):
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        out = augment_batch(x, rng)
        assert out.shape == x.shape

    def test_rejects_non_batch(self, rng):
        with pytest.raises(ValueError):
            random_crop(rng.normal(size=(3, 8, 8)), rng)
