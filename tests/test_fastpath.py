"""Symmetry-aware factor fast path: syrk Gram kernels, im2col reuse,
triangular-packed factor communication, and the workspace arena.

Covers the fast-path invariants:

1. ``gram`` (BLAS syrk) matches the GEMM ``X.T @ X`` to 1e-6 and is
   *exactly* symmetric (the property packing relies on);
2. ``tri_pack``/``tri_unpack`` round-trip losslessly for float32/float64
   (fixed cases + hypothesis property);
3. conv factor A built from the forward's cached im2col patches is
   bit-identical to recomputing the lowering from raw activations;
4. the factor allreduce payload is exactly ``d*(d+1)/2`` elements per
   ``d x d`` factor on both the synchronous and the pipelined path;
5. training with the fast path on/off produces loss trajectories that
   agree to 1e-6, and float64 models stay float64 end to end;
6. the workspace arena reaches steady state: after warm-up, the hot-path
   scratch requests all hit the pool.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.backend import World
from repro.comm.engine import symmetric_payload_nbytes
from repro.comm.fusion import tri_len, tri_pack, tri_unpack
from repro.core.comm_ops import AllReduceLaunch, pack_symmetric, unpack_symmetric
from repro.core.distributed import PhaseController
from repro.core.factors import (
    append_bias_column,
    conv2d_factor_A,
    conv2d_factor_A_from_patches,
    conv2d_factor_G,
    ema_update,
)
from repro.core.preconditioner import KFAC
from repro.nn.container import Sequential
from repro.nn.layers import Conv2d, Linear, ReLU
from repro.nn.loss import CrossEntropyLoss
from repro.nn.resnet import resnet20_cifar
from repro.optim.lr_scheduler import ConstantSchedule
from repro.parallel.trainer import DataParallelTrainer, TrainerConfig
from repro.tensor.gram import gram, has_syrk, mirror_upper
from repro.tensor.im2col import im2col
from repro.tensor.workspace import Workspace, default_workspace
from tests.conftest import build_tiny_cnn

RNG = np.random.default_rng(1234)


# ---------------------------------------------------------------------------
# 1. syrk Gram kernel
# ---------------------------------------------------------------------------
class TestGram:
    @pytest.mark.parametrize("dtype,tol", [(np.float32, 1e-6), (np.float64, 1e-12)])
    def test_matches_gemm(self, dtype, tol):
        x = RNG.normal(size=(200, 37)).astype(dtype)
        ref = x.T @ x
        got = gram(x)
        scale = np.abs(ref).max()
        assert np.abs(got - ref).max() <= tol * scale

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_exactly_symmetric(self, dtype):
        assert has_syrk(dtype)
        x = RNG.normal(size=(64, 23)).astype(dtype)
        g = gram(x)
        assert np.array_equal(g, g.T)

    def test_out_buffer_used(self):
        x = RNG.normal(size=(50, 11)).astype(np.float32)
        out = np.empty((11, 11), dtype=np.float32)
        got = gram(x, out=out)
        assert got is out
        assert np.allclose(out, x.T @ x, atol=1e-5)

    def test_out_buffer_validated(self):
        x = RNG.normal(size=(50, 11)).astype(np.float32)
        with pytest.raises(ValueError):
            gram(x, out=np.empty((12, 12), dtype=np.float32))
        with pytest.raises(ValueError):
            gram(x, out=np.empty((11, 11), dtype=np.float64))

    def test_noncontiguous_input(self):
        x = RNG.normal(size=(100, 16)).astype(np.float32)[::2]
        assert np.allclose(gram(x), x.T @ x, atol=1e-5)
        assert np.array_equal(gram(x), gram(x).T)

    def test_gemm_fallback_dtype(self):
        """dtypes without a syrk routine fall back to symmetrized GEMM."""
        x = RNG.normal(size=(20, 5)).astype(np.float16)
        assert not has_syrk(x.dtype)
        g = gram(x)
        assert g.dtype == np.float16
        assert np.array_equal(g, g.T)

    def test_mirror_upper(self):
        m = np.triu(RNG.normal(size=(6, 6))).astype(np.float64)
        out = mirror_upper(m.copy())
        assert np.array_equal(out, out.T)
        assert np.array_equal(np.triu(out), np.triu(m))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            gram(np.ones(4, dtype=np.float32))


# ---------------------------------------------------------------------------
# 2. triangular packing
# ---------------------------------------------------------------------------
def _random_symmetric(d: int, dtype, seed: int = 0) -> np.ndarray:
    m = np.random.default_rng(seed).normal(size=(d, d)).astype(dtype)
    return mirror_upper(m)


class TestTriPack:
    def test_tri_len(self):
        assert [tri_len(d) for d in (1, 2, 3, 10)] == [1, 3, 6, 55]

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("d", [1, 2, 7, 64])
    def test_round_trip_exact(self, dtype, d):
        m = _random_symmetric(d, dtype, seed=d)
        flat = tri_pack(m)
        assert flat.shape == (tri_len(d),)
        assert flat.dtype == m.dtype
        back = tri_unpack(flat, d)
        assert back.dtype == m.dtype
        assert np.array_equal(back, m)

    @settings(max_examples=30, deadline=None)
    @given(
        d=st.integers(1, 24),
        seed=st.integers(0, 10_000),
        f64=st.booleans(),
    )
    def test_round_trip_property(self, d, seed, f64):
        dtype = np.float64 if f64 else np.float32
        m = _random_symmetric(d, dtype, seed)
        back = tri_unpack(tri_pack(m), d)
        assert back.dtype == m.dtype
        assert np.array_equal(back, m)

    def test_pack_out_buffer(self):
        m = _random_symmetric(9, np.float32, 3)
        out = np.empty(tri_len(9), dtype=np.float32)
        assert tri_pack(m, out=out) is out
        assert np.array_equal(out, tri_pack(m))

    def test_unpack_out_buffer(self):
        m = _random_symmetric(5, np.float64, 4)
        out = np.empty((5, 5), dtype=np.float64)
        assert tri_unpack(tri_pack(m), 5, out=out) is out
        assert np.array_equal(out, m)

    def test_reduce_then_unpack_equals_unpack_then_reduce(self):
        """Averaging packed triangles == averaging full matrices (the
        property that makes packed allreduce lossless)."""
        mats = [_random_symmetric(12, np.float64, s) for s in range(4)]
        full_avg = np.mean(mats, axis=0)
        packed_avg = np.mean([tri_pack(m) for m in mats], axis=0)
        assert np.array_equal(tri_unpack(packed_avg, 12), full_avg)

    def test_shape_errors(self):
        with pytest.raises(ValueError):
            tri_pack(np.ones((3, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            tri_unpack(np.ones(5, dtype=np.float32), 3)

    def test_pack_symmetric_helpers(self):
        mats = [_random_symmetric(d, np.float32, d) for d in (3, 8)]
        flats = pack_symmetric(mats)
        assert [f.shape for f in flats] == [(6,), (36,)]
        back = unpack_symmetric(flats, [3, 8])
        for m, b in zip(mats, back):
            assert np.array_equal(m, b)
        with pytest.raises(ValueError):
            unpack_symmetric(flats, [3])

    def test_symmetric_payload_nbytes(self):
        assert symmetric_payload_nbytes([3, 8], itemsize=4) == [24, 144]


# ---------------------------------------------------------------------------
# 3. conv factor A from cached patches
# ---------------------------------------------------------------------------
class TestCachedPatches:
    @pytest.mark.parametrize("bias", [False, True])
    def test_factor_from_cached_patches_bit_identical(self, bias):
        conv = Conv2d(3, 5, 3, stride=2, padding=1, bias=bias, workspace=Workspace())
        x = RNG.normal(size=(4, 3, 9, 9)).astype(np.float32)
        conv.forward(x)
        patches = conv.claim_patches()
        assert patches is not None
        # the cached lowering IS the im2col expansion
        assert np.array_equal(
            patches, im2col(x, conv.kernel_size, conv.stride, conv.padding)
        )
        from_cache = conv2d_factor_A_from_patches(patches, bias)
        recomputed = conv2d_factor_A(
            x, conv.kernel_size, conv.stride, conv.padding, bias
        )
        assert np.array_equal(from_cache, recomputed)

    def test_claim_is_single_shot(self):
        conv = Conv2d(2, 2, 3, workspace=Workspace())
        x = RNG.normal(size=(1, 2, 5, 5)).astype(np.float32)
        conv.forward(x)
        assert conv.claim_patches() is not None
        assert conv.claim_patches() is None

    def test_backward_releases_unclaimed_patches(self):
        ws = Workspace()
        conv = Conv2d(2, 3, 3, padding=1, workspace=ws)
        x = RNG.normal(size=(2, 2, 6, 6)).astype(np.float32)
        out = conv.forward(x)
        assert conv.cached_patches is not None
        conv.backward(np.ones_like(out))
        assert conv.cached_patches is None
        assert ws.pooled_buffers >= 1  # the patch matrix went back to the pool

    def test_kfac_capture_consumes_cached_patches(self):
        """End to end through KFAC hooks: A from cached patches equals A
        from a from-scratch im2col, bit for bit."""
        model = build_tiny_cnn(seed=7)
        x = np.random.default_rng(5).normal(size=(8, 1, 8, 8)).astype(np.float32)
        y = np.random.default_rng(6).integers(0, 3, size=8).astype(np.int64)
        kfac = KFAC(model, damping=0.01, fac_update_freq=1, kfac_update_freq=1)
        loss = CrossEntropyLoss()
        loss(model(x), y)
        conv_handlers = [h for h in kfac.layers if isinstance(h.module, Conv2d)]
        assert conv_handlers and all(h._input_is_patches for h in conv_handlers)
        expected = {
            h.name: conv2d_factor_A_from_patches(h.a_input.copy(), h.has_bias)
            for h in conv_handlers
        }
        model.backward(loss.backward())
        kfac.step()
        for h in conv_handlers:
            assert np.array_equal(h.A, expected[h.name])  # first EMA adopts
            assert h.a_input is None and not h._input_is_patches


# ---------------------------------------------------------------------------
# 4. packed payload on the wire (sync + pipelined)
# ---------------------------------------------------------------------------
class RecordingController(PhaseController):
    """PhaseController that records every factor_comm tensor shape."""

    def __init__(self, kfacs, world):
        super().__init__(kfacs, world)
        self.factor_shapes: list[tuple[int, ...]] = []

    def _run_allreduce(self, reqs):
        if reqs[0].phase == "factor_comm":
            self.factor_shapes.extend(t.shape for t in reqs[0].tensors)
        return super()._run_allreduce(reqs)

    def _launch(self, reqs, pending):
        if isinstance(reqs[0], AllReduceLaunch) and reqs[0].phase == "factor_comm":
            self.factor_shapes.extend(t.shape for t in reqs[0].tensors)
        return super()._launch(reqs, pending)


def _run_steps_recording(world_size=2, steps=2, **kfac_kw):
    world = World(world_size)
    models = [build_tiny_cnn(seed=42) for _ in range(world_size)]
    kfacs = [
        KFAC(
            m,
            rank=r,
            world_size=world_size,
            damping=0.01,
            fac_update_freq=1,
            kfac_update_freq=1,
            **kfac_kw,
        )
        for r, m in enumerate(models)
    ]
    controller = RecordingController(kfacs, world)
    rng = np.random.default_rng(3)
    losses = [CrossEntropyLoss() for _ in range(world_size)]
    for _ in range(steps):
        for m, l in zip(models, losses):
            x = rng.normal(size=(4, 1, 8, 8)).astype(np.float32)
            y = rng.integers(0, 3, size=4).astype(np.int64)
            l(m(x), y)
            m.backward(l.backward())
        controller.step()
    return kfacs[0], controller


class TestPackedPayload:
    def _expected(self, kfac, packed: bool) -> list[tuple[int, ...]]:
        metas = kfac.factor_metas
        if packed:
            return [(tri_len(m.dim),) for m in metas]
        return [(m.dim, m.dim) for m in metas]

    def test_sync_path_ships_triangles(self):
        kfac, ctrl = _run_steps_recording(symmetric_comm=True, steps=2)
        expected = self._expected(kfac, packed=True)
        assert ctrl.factor_shapes == expected * 2  # one exchange per step
        # exactly d*(d+1)/2 elements per d x d factor
        for meta, shape in zip(kfac.factor_metas * 2, ctrl.factor_shapes):
            assert shape == (meta.dim * (meta.dim + 1) // 2,)

    def test_sync_path_full_when_disabled(self):
        kfac, ctrl = _run_steps_recording(symmetric_comm=False, steps=1)
        assert ctrl.factor_shapes == self._expected(kfac, packed=False)

    def test_pipelined_path_ships_triangles(self):
        kfac, ctrl = _run_steps_recording(
            symmetric_comm=True, scheduler="graph", bucket_bytes=1 << 12, steps=1
        )
        assert sorted(ctrl.factor_shapes) == sorted(self._expected(kfac, packed=True))

    def test_pipelined_path_full_when_disabled(self):
        kfac, ctrl = _run_steps_recording(
            symmetric_comm=False, scheduler="graph", bucket_bytes=1 << 12, steps=1
        )
        assert sorted(ctrl.factor_shapes) == sorted(self._expected(kfac, packed=False))

    def test_packed_halves_wire_elements(self):
        kfac, ctrl = _run_steps_recording(symmetric_comm=True, steps=1)
        packed = sum(np.prod(s) for s in ctrl.factor_shapes)
        full = sum(m.dim**2 for m in kfac.factor_metas)
        assert packed < 0.51 * full + len(kfac.factor_metas)


# ---------------------------------------------------------------------------
# 5. numerical equivalence + dtype preservation
# ---------------------------------------------------------------------------
def _train(small_splits, symmetric: bool, world_size=2, epochs=2):
    tx, ty, vx, vy = small_splits
    cfg = TrainerConfig(
        world_size=world_size,
        batch_size=16,
        epochs=epochs,
        lr_schedule=ConstantSchedule(0.05),
        seed=0,
        kfac=None,
    )
    from repro.core.preconditioner import KFACHyperParams

    cfg.kfac = KFACHyperParams(
        damping=0.01,
        fac_update_freq=1,
        kfac_update_freq=2,
        symmetric_comm=symmetric,
    )
    factory = lambda rng: resnet20_cifar(rng, width_multiplier=0.25, num_classes=4)
    return DataParallelTrainer(factory, tx, ty, vx, vy, cfg).train()


class TestEquivalence:
    def test_cifar_trajectory_matches_unpacked(self, tiny_dataset):
        """Fast path on vs off: loss trajectories agree to 1e-6 (packed
        averaging of exactly-symmetric factors is lossless)."""
        hist_packed = _train(tiny_dataset.splits, symmetric=True)
        hist_full = _train(tiny_dataset.splits, symmetric=False)
        for ep, ef in zip(hist_packed.epochs, hist_full.epochs):
            assert abs(ep.train_loss - ef.train_loss) <= 1e-6
            assert ep.val_accuracy == pytest.approx(ef.val_accuracy, abs=1e-6)

    def test_float64_dtype_preserved_end_to_end(self):
        """A float64 model through the packed multi-worker path keeps
        float64 factors, second-order state, and gradients."""
        world_size = 2
        world = World(world_size)

        def f64_mlp(seed=11):
            r = np.random.default_rng(seed)
            model = Sequential(Linear(6, 8, rng=r), ReLU(), Linear(8, 3, rng=r))
            for p in model.parameters():
                p.data = p.data.astype(np.float64)
                p.grad = np.zeros_like(p.data)
            return model

        models = [f64_mlp() for _ in range(world_size)]
        kfacs = [
            KFAC(
                m, rank=r, world_size=world_size, damping=0.01,
                fac_update_freq=1, kfac_update_freq=1, symmetric_comm=True,
            )
            for r, m in enumerate(models)
        ]
        controller = PhaseController(kfacs, world)
        rng = np.random.default_rng(7)
        for _ in range(2):
            for m in models:
                x = rng.normal(size=(8, 6))  # float64
                y = rng.integers(0, 3, size=8).astype(np.int64)
                loss = CrossEntropyLoss()
                loss(m(x), y)
                m.backward(loss.backward())
            controller.step()
        for k in kfacs:
            for layer in k.layers:
                assert layer.A.dtype == np.float64
                assert layer.G.dtype == np.float64
                assert layer.eig_A.Q.dtype == np.float64
                assert layer.eig_G.lam.dtype == np.float64
        for m in models:
            for p in m.parameters():
                assert p.grad.dtype == np.float64


# ---------------------------------------------------------------------------
# 6. workspace arena
# ---------------------------------------------------------------------------
class TestWorkspace:
    def test_request_release_reuses_buffer(self):
        ws = Workspace()
        a = ws.request((4, 5), np.float32)
        ws.release(a)
        b = ws.request((5, 4), np.float32)  # same element count, new shape
        assert np.shares_memory(a, b)
        assert ws.hits == 1 and ws.misses == 1

    def test_exact_size_and_dtype_matching(self):
        ws = Workspace()
        ws.release(np.empty(20, dtype=np.float32))
        assert ws.misses == 0
        c = ws.request((21,), np.float32)  # size mismatch -> fresh
        d = ws.request((20,), np.float64)  # dtype mismatch -> fresh
        assert ws.misses == 2 and ws.pooled_buffers == 1
        del c, d

    def test_borrow_scope(self):
        ws = Workspace()
        with ws.borrow((3, 3), np.float64) as buf:
            buf[...] = 1.0
            assert ws.pooled_buffers == 0
        assert ws.pooled_buffers == 1

    def test_release_ignores_none_and_noncontiguous(self):
        ws = Workspace()
        ws.release(None)
        ws.release(np.empty((6, 6), dtype=np.float32)[::2])
        assert ws.pooled_buffers == 0

    def test_clear(self):
        ws = Workspace()
        ws.release(np.empty(8, dtype=np.float32))
        ws.request((8,), np.float32)
        ws.clear()
        assert ws.pooled_buffers == 0 and ws.hits == 0 and ws.misses == 0

    def test_default_workspace_singleton(self):
        assert default_workspace() is default_workspace()

    def test_conv_training_steady_state_reuses_patch_buffers(self):
        """After a warm-up iteration, the conv hot path stops allocating:
        every patch-matrix request hits the arena pool."""
        ws = Workspace()
        conv = Conv2d(3, 4, 3, padding=1, workspace=ws)
        x = RNG.normal(size=(4, 3, 8, 8)).astype(np.float32)
        out = conv.forward(x)
        conv.backward(np.ones_like(out))  # warm-up: miss, then recycle
        misses_after_warmup = ws.misses
        for _ in range(3):
            out = conv.forward(x)
            conv.backward(np.ones_like(out))
        assert ws.misses == misses_after_warmup
        assert ws.hits >= 3

    def test_backward_never_pools_aliased_col2im_scratch(self):
        """Single-sided padding with leading size-1 dims keeps col2im's
        trimming slice contiguous, so dx aliases the scratch buffer — that
        buffer must escape the arena, or a later request would zero it."""
        ws = Workspace()
        conv = Conv2d(1, 1, 3, padding=(1, 0), workspace=ws)
        x = RNG.normal(size=(1, 1, 6, 6)).astype(np.float32)
        out = conv.forward(x)
        dx = conv.backward(np.ones_like(out))
        expected = dx.copy()
        # drain the pool with same-sized requests; none may alias dx
        for _ in range(ws.pooled_buffers + 1):
            buf = ws.request((1, 1, 8, 6), np.float32)
            assert not np.shares_memory(buf, dx)
            buf[...] = 0.0
        assert np.array_equal(dx, expected)

    def test_kfac_factor_stage_steady_state(self):
        """With capture every step, the whole factor stage (patches, bias
        columns, Gram outputs, EMA scratch) recycles after one update."""
        from repro.nn.layers import Flatten

        ws = Workspace()
        model = Sequential(
            Conv2d(1, 4, 3, padding=1, bias=True, workspace=ws),
            ReLU(),
            Flatten(),
            Linear(4 * 8 * 8, 3),
        )
        kfac = KFAC(model, damping=0.01, fac_update_freq=1, kfac_update_freq=1)
        for handler in kfac.layers:
            handler.workspace = ws
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=4).astype(np.int64)
        loss = CrossEntropyLoss()

        def one_step():
            loss(model(x), y)
            model.backward(loss.backward())
            kfac.step()
            model.zero_grad()

        one_step()
        one_step()  # second warm-up: EMA scratch path now exercised
        misses = ws.misses
        for _ in range(3):
            one_step()
        assert ws.misses == misses


# ---------------------------------------------------------------------------
# 7. allocation-free helpers stay bit-identical
# ---------------------------------------------------------------------------
class TestAllocationFreeHelpers:
    def test_append_bias_column_out_matches_concatenate(self):
        mat = RNG.normal(size=(7, 4)).astype(np.float32)
        ref = np.concatenate([mat, np.ones((7, 1), dtype=np.float32)], axis=1)
        out = np.empty((7, 5), dtype=np.float32)
        got = append_bias_column(mat, out=out)
        assert got is out
        assert np.array_equal(got, ref)
        assert np.array_equal(append_bias_column(mat), ref)

    def test_append_bias_column_validates_out(self):
        mat = RNG.normal(size=(3, 2)).astype(np.float32)
        with pytest.raises(ValueError):
            append_bias_column(mat, out=np.empty((3, 2), dtype=np.float32))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_ema_update_workspace_bit_identical(self, dtype):
        ws = Workspace()
        new = RNG.normal(size=(6, 6)).astype(dtype)
        ema_a = RNG.normal(size=(6, 6)).astype(dtype)
        ema_b = ema_a.copy()
        ema_update(ema_a, new, 0.95)
        ema_update(ema_b, new, 0.95, workspace=ws)
        assert np.array_equal(ema_a, ema_b)
        assert ws.pooled_buffers == 1  # scratch went back to the pool

    def test_ema_update_first_call_copies(self):
        ws = Workspace()
        new = RNG.normal(size=(3, 3)).astype(np.float32)
        ema = ema_update(None, new, 0.9, workspace=ws)
        assert ema is not new and np.array_equal(ema, new)

    def test_conv_factor_G_workspace_matches(self):
        ws = Workspace()
        g = RNG.normal(size=(3, 4, 5, 5)).astype(np.float32)
        assert np.array_equal(conv2d_factor_G(g), conv2d_factor_G(g, workspace=ws))
