"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.nn.container import Sequential
from repro.nn.layers import Conv2d, Flatten, Linear, ReLU
from repro.nn.module import Module


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def build_tiny_cnn(seed: int = 42, num_classes: int = 3) -> Module:
    """A small conv+linear network covering both K-FAC layer types."""
    r = np.random.default_rng(seed)
    return Sequential(
        Conv2d(1, 4, 3, padding=1, bias=True, rng=r),
        ReLU(),
        Conv2d(4, 6, 3, stride=2, padding=1, bias=False, rng=r),
        ReLU(),
        Flatten(),
        Linear(6 * 4 * 4, 16, rng=r),
        ReLU(),
        Linear(16, num_classes, rng=r),
    )


@pytest.fixture
def tiny_cnn() -> Module:
    return build_tiny_cnn()


@pytest.fixture
def tiny_batch(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    x = rng.normal(size=(8, 1, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, size=8).astype(np.int64)
    return x, y


@pytest.fixture(scope="session")
def tiny_dataset() -> SyntheticImageDataset:
    return SyntheticImageDataset(
        SyntheticSpec(
            n_train=128, n_val=64, num_classes=4, image_size=8, channels=3,
            noise=0.5, max_shift=1, seed=5,
        )
    )


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` w.r.t. array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad
