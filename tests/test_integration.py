"""Cross-module integration tests beyond the per-module suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preconditioner import KFACHyperParams, LAYER_WISE
from repro.core.schedule import KFACParamScheduler
from repro.experiments.__main__ import main as experiments_cli
from repro.nn.resnet import resnet20_cifar
from repro.optim.lr_scheduler import ConstantSchedule
from repro.parallel.trainer import DataParallelTrainer, TrainerConfig


def factory(rng):
    return resnet20_cifar(rng, width_multiplier=0.25, num_classes=4)


class TestTrainerKfacVariants:
    @pytest.mark.parametrize("strategy", ["comm-opt", LAYER_WISE])
    def test_both_strategies_train(self, tiny_dataset, strategy):
        tx, ty, vx, vy = tiny_dataset.splits
        cfg = TrainerConfig(
            world_size=2, batch_size=16, epochs=2,
            lr_schedule=ConstantSchedule(0.05),
            kfac=KFACHyperParams(damping=0.01, kfac_update_freq=2, strategy=strategy),
        )
        hist = DataParallelTrainer(factory, tx, ty, vx, vy, cfg).train()
        assert hist.epochs[-1].train_loss < hist.epochs[0].train_loss

    def test_strategies_produce_identical_training(self, tiny_dataset):
        """End-to-end: lw and opt yield the same loss trajectory."""
        tx, ty, vx, vy = tiny_dataset.splits

        def run(strategy):
            cfg = TrainerConfig(
                world_size=2, batch_size=16, epochs=1,
                lr_schedule=ConstantSchedule(0.05), seed=3,
                kfac=KFACHyperParams(damping=0.01, kfac_update_freq=2, strategy=strategy),
            )
            hist = DataParallelTrainer(factory, tx, ty, vx, vy, cfg).train()
            return [e.train_loss for e in hist.epochs]

        np.testing.assert_allclose(run("comm-opt"), run(LAYER_WISE), rtol=1e-5)

    def test_inverse_mode_trains(self, tiny_dataset):
        tx, ty, vx, vy = tiny_dataset.splits
        cfg = TrainerConfig(
            world_size=2, batch_size=16, epochs=2,
            lr_schedule=ConstantSchedule(0.05),
            kfac=KFACHyperParams(damping=0.03, kfac_update_freq=2, use_eigen_decomp=False),
        )
        hist = DataParallelTrainer(factory, tx, ty, vx, vy, cfg).train()
        assert np.isfinite(hist.epochs[-1].train_loss)

    def test_kfac_scheduler_integration(self, tiny_dataset):
        """Damping decays and update interval grows across epochs."""
        tx, ty, vx, vy = tiny_dataset.splits
        cfg = TrainerConfig(
            world_size=1, batch_size=16, epochs=3,
            lr_schedule=ConstantSchedule(0.05),
            kfac=KFACHyperParams(damping=0.01, kfac_update_freq=2),
            kfac_scheduler_factory=lambda k: KFACParamScheduler(
                k, damping_alpha=0.5, damping_schedule=[1],
                update_freq_alpha=2.0, update_freq_schedule=[2],
            ),
        )
        trainer = DataParallelTrainer(factory, tx, ty, vx, vy, cfg)
        trainer.train()
        assert trainer.kfacs is not None
        kfac = trainer.kfacs[0]
        assert kfac.damping == pytest.approx(0.005)
        assert kfac.kfac_update_freq == 4

    def test_greedy_assignment_trains(self, tiny_dataset):
        tx, ty, vx, vy = tiny_dataset.splits
        cfg = TrainerConfig(
            world_size=3, batch_size=8, epochs=1,
            lr_schedule=ConstantSchedule(0.05),
            kfac=KFACHyperParams(damping=0.01, assignment="greedy"),
        )
        hist = DataParallelTrainer(factory, tx, ty, vx, vy, cfg).train()
        assert np.isfinite(hist.epochs[-1].train_loss)


class TestCli:
    def test_list(self, capsys):
        assert experiments_cli(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "fig10" in out

    def test_run_analytic(self, capsys):
        assert experiments_cli(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "factor computation time" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            experiments_cli(["tableXYZ"])


class TestSPMDStress:
    def test_many_iterations_many_ops(self):
        """Longer SPMD runs with interleaved op types stay matched."""
        from repro.comm.backend import World

        world = World(4)

        def program(view):
            total = 0.0
            for i in range(20):
                r = view.allreduce(np.full(3, float(view.rank + i)), name="a", op="sum")
                g = view.allgather(np.full(view.rank + 1, 1.0), name="g")
                view.barrier("b")
                total += float(r[0]) + sum(float(x.sum()) for x in g)
            return total

        results = world.run_spmd(program, timeout=60)
        assert len(set(results)) == 1  # all ranks agree

    def test_interleaved_kfac_and_user_ops(self):
        """User collectives interleaved with K-FAC's own named ops."""
        from repro.comm.backend import World
        from repro.comm.horovod import HorovodContext
        from repro.core.distributed import SPMDDriver
        from repro.core.preconditioner import KFAC
        from repro.nn.loss import CrossEntropyLoss
        from tests.conftest import build_tiny_cnn

        world = World(2)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=8).astype(np.int64)

        def program(view):
            hvd = HorovodContext(view)
            model = build_tiny_cnn(seed=1)
            kfac = KFAC(model, rank=view.rank, world_size=2, damping=0.01)
            driver = SPMDDriver(kfac, hvd)
            loss = CrossEntropyLoss()
            for step in range(3):
                model.zero_grad()
                loss(model(x[view.rank * 4 : (view.rank + 1) * 4]),
                     y[view.rank * 4 : (view.rank + 1) * 4])
                model.backward(loss.backward())
                for name, p in model.named_parameters():
                    p.grad[...] = hvd.allreduce(p.grad, name=f"g{name}")
                hvd.barrier("user-barrier")  # extra user op between K-FAC steps
                driver.step()
            return float(sum(abs(p.data).sum() for p in model.parameters()))

        checksums = world.run_spmd(program, timeout=60)
        assert checksums[0] == pytest.approx(checksums[1], rel=1e-6)
