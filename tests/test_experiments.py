"""Experiment runners: registry integrity + tiny-scale smoke + analytic shapes."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.common import SCALE_PRESETS, make_paired_task
from repro.experiments.update_freq import modeled_training_minutes


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        """DESIGN.md's experiment index must all be runnable."""
        expected = {
            "table1", "table2+fig4", "fig5", "table3+fig6", "fig7", "fig8",
            "fig9", "table4", "table5", "table6", "fig10",
            "ablation-placement", "ablation-factor-comm",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("table99")


class TestAnalyticExperiments:
    """Model-driven experiments run at full paper scale (they are cheap)."""

    def test_table4_shape(self):
        result = run_experiment("table4")
        model = result.data["model"]
        assert model[152][-1] < 0 < model[50][-1]

    def test_fig7_renders(self):
        result = run_experiment("fig7")
        assert "K-FAC-opt" in result.render()
        points = result.data["points"]
        assert all(p.kfac_opt_minutes < p.sgd_minutes for p in points)

    def test_fig9_shows_crossover(self):
        points = run_experiment("fig9").data["points"]
        assert points[-1].kfac_opt_minutes > points[-1].sgd_minutes

    def test_table5_renders_all_rows(self):
        out = run_experiment("table5").render()
        # 3 GPU-count rows per model plus one factor-payload summary row
        assert out.count("ResNet-50") == 4 and out.count("ResNet-152") == 4
        assert "tri-packed" in out

    def test_table6_imbalance(self):
        result = run_experiment("table6")
        # rendered table includes both model and paper columns
        assert "min (model)" in result.render()

    def test_fig10_superlinear(self):
        result = run_experiment("fig10")
        times = result.data["times_ms"]
        params = result.data["params_m"]
        assert times[-1] / times[0] > params[-1] / params[0]

    def test_placement_ablation_improves_small_scales(self):
        result = run_experiment("ablation-placement")
        # at 16 GPUs greedy must strictly beat round-robin for deep models
        rows = result.data["rows"]
        r152_16 = next(r for r in rows if r[0] == "ResNet-152" and r[1] == 16)
        assert float(r152_16[2]) > float(r152_16[3])

    def test_modeled_minutes_monotone_in_interval(self):
        t100 = modeled_training_minutes(50, eig_interval=100)
        t1000 = modeled_training_minutes(50, eig_interval=1000)
        assert t100 > t1000


@pytest.mark.slow
class TestTrainingExperimentsTiny:
    """Tiny-scale end-to-end smoke of the training-based experiments."""

    def test_table1_tiny(self):
        result = run_experiment("table1", scale="tiny")
        accs = result.data["accuracy"]
        assert len(accs["SGD"]) == 3
        assert all(0.0 <= a <= 1.0 for row in accs.values() for a in row)

    def test_factor_comm_ablation_tiny(self):
        result = run_experiment("ablation-factor-comm", scale="tiny")
        accs = result.data["accuracy"]
        assert len(accs) == 3


class TestPresets:
    def test_presets_exist(self):
        assert {"tiny", "small"} <= set(SCALE_PRESETS)

    def test_paired_task_built_from_preset(self):
        ds = make_paired_task(SCALE_PRESETS["tiny"])
        assert ds.train_x.shape[0] == SCALE_PRESETS["tiny"].n_train
        assert ds.spec.class_pairing > 0
