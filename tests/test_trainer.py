"""Data-parallel trainer: equivalence, history integrity, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preconditioner import KFACHyperParams
from repro.nn.resnet import resnet20_cifar
from repro.optim.lr_scheduler import ConstantSchedule, MultiStepSchedule
from repro.parallel.trainer import DataParallelTrainer, TrainerConfig, TrainingHistory, EpochStats


def factory(rng):
    return resnet20_cifar(rng, width_multiplier=0.25, num_classes=4)


@pytest.fixture
def small_data(tiny_dataset):
    return tiny_dataset.splits


def make_trainer(small_data, world_size=2, epochs=2, kfac=None, seed=0, batch_size=16):
    tx, ty, vx, vy = small_data
    cfg = TrainerConfig(
        world_size=world_size,
        batch_size=batch_size,
        epochs=epochs,
        lr_schedule=ConstantSchedule(0.05),
        seed=seed,
        kfac=kfac,
    )
    return DataParallelTrainer(factory, tx, ty, vx, vy, cfg)


class TestTraining:
    def test_loss_decreases(self, small_data):
        tr = make_trainer(small_data, epochs=3)
        hist = tr.train()
        assert hist.epochs[-1].train_loss < hist.epochs[0].train_loss

    def test_history_structure(self, small_data):
        tr = make_trainer(small_data, epochs=2)
        hist = tr.train()
        assert len(hist.epochs) == 2
        assert hist.total_iterations == sum(e.iterations for e in hist.epochs)
        assert all(e.val_accuracy is not None for e in hist.epochs)
        assert set(hist.phase_seconds) == {"io", "forward", "backward", "exchange", "update"}
        assert hist.phase_seconds["forward"] > 0

    def test_comm_accounting_present(self, small_data):
        tr = make_trainer(small_data, world_size=2, epochs=1)
        hist = tr.train()
        assert hist.comm_bytes.get("grad_allreduce", 0) > 0
        assert hist.comm_seconds.get("grad_allreduce", 0) > 0

    def test_persistent_fusion_buffer(self, small_data):
        """One fusion buffer per trainer, reused across iterations."""
        tr = make_trainer(small_data, world_size=2, epochs=1)
        fusion_before = tr._grad_fusion
        assert tr.comm_engine.fusion(op="average", phase="grad_allreduce") is fusion_before
        hist = tr.train()
        assert tr._grad_fusion is fusion_before  # never rebuilt
        # at least one flush per iteration (capacity may force more)
        assert fusion_before.flush_count >= hist.total_iterations
        assert hist.grad_fusion_flushes == fusion_before.flush_count
        assert fusion_before.pending_bytes == 0  # fully drained per iteration

    def test_comm_bytes_count_true_fused_payload(self, small_data):
        """grad_allreduce bytes == what the fused flushes actually sent:
        per-iteration gradient payload x iterations, matching the
        buffer's own flushed-bytes counter exactly."""
        tr = make_trainer(small_data, world_size=2, epochs=1)
        hist = tr.train()
        assert hist.comm_bytes["grad_allreduce"] == tr._grad_fusion.bytes_flushed
        grad_bytes = sum(p.grad.nbytes for p in tr.replicas[0].parameters())
        assert hist.comm_bytes["grad_allreduce"] == grad_bytes * hist.total_iterations

    def test_small_capacity_flushes_mid_iteration(self, small_data):
        tx, ty, vx, vy = small_data
        cfg = TrainerConfig(
            world_size=2, batch_size=16, epochs=1,
            lr_schedule=ConstantSchedule(0.05),
            fusion_capacity_bytes=1 << 10,  # force capacity-triggered flushes
        )
        tr = DataParallelTrainer(factory, tx, ty, vx, vy, cfg)
        hist = tr.train()
        assert tr._grad_fusion.flush_count > hist.total_iterations
        grad_bytes = sum(p.grad.nbytes for p in tr.replicas[0].parameters())
        assert hist.comm_bytes["grad_allreduce"] == grad_bytes * hist.total_iterations

    def test_pipelined_kfac_trainer_matches_sync(self, small_data):
        """End-to-end: scheduler="graph" trains to the same weights and
        reports hidden factor-comm seconds."""
        kf_sync = KFACHyperParams(kfac_update_freq=2, fac_update_freq=1, damping=0.01)
        kf_pipe = KFACHyperParams(
            kfac_update_freq=2, fac_update_freq=1, damping=0.01,
            scheduler="graph", bucket_bytes=1 << 12,
        )
        tr_sync = make_trainer(small_data, world_size=2, epochs=1, kfac=kf_sync)
        tr_pipe = make_trainer(small_data, world_size=2, epochs=1, kfac=kf_pipe)
        h_sync = tr_sync.train()
        h_pipe = tr_pipe.train()
        assert not h_sync.comm_hidden_seconds
        assert h_pipe.comm_hidden_seconds.get("factor_comm", 0.0) > 0.0
        for (n, p_s), (_, p_p) in zip(
            tr_sync.replicas[0].named_parameters(), tr_pipe.replicas[0].named_parameters()
        ):
            np.testing.assert_allclose(p_p.data, p_s.data, atol=2e-5, rtol=2e-4, err_msg=n)

    def test_single_worker_no_comm(self, small_data):
        tr = make_trainer(small_data, world_size=1, epochs=1)
        hist = tr.train()
        assert hist.comm_seconds.get("grad_allreduce", 0.0) == 0.0

    def test_data_parallel_equivalence_sgd(self, small_data):
        """P workers with per-worker batch B == 1 worker with batch P*B.

        Uses a BatchNorm-free model: BN statistics are computed over the
        *local* batch, so exact equivalence is only defined without BN
        (the paper likewise treats distributed BN as out of scope, §III-A).
        """
        from repro.nn.container import Sequential
        from repro.nn.layers import Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU

        def bn_free_factory(rng):
            return Sequential(
                Conv2d(3, 6, 3, padding=1, bias=True, rng=rng),
                ReLU(),
                Conv2d(6, 8, 3, stride=2, padding=1, bias=True, rng=rng),
                ReLU(),
                GlobalAvgPool2d(),
                Linear(8, 4, rng=rng),
            )

        tx, ty, vx, vy = small_data

        def run(world, bs):
            cfg = TrainerConfig(
                world_size=world, batch_size=bs, epochs=1,
                lr_schedule=ConstantSchedule(0.05), seed=0,
            )
            tr = DataParallelTrainer(bn_free_factory, tx, ty, vx, vy, cfg)
            tr.train()
            return tr.replicas[0].state_dict()

        s1 = run(1, 32)
        s2 = run(2, 16)
        for key in s1:
            np.testing.assert_allclose(
                s2[key], s1[key], rtol=1e-4, atol=1e-6, err_msg=key
            )

    def test_kfac_trainer_runs(self, small_data):
        kfac = KFACHyperParams(damping=0.01, kfac_update_freq=2)
        tr = make_trainer(small_data, world_size=2, epochs=2, kfac=kfac)
        hist = tr.train()
        assert hist.comm_bytes.get("factor_comm", 0) > 0
        assert hist.epochs[-1].train_loss < hist.epochs[0].train_loss

    def test_lr_schedule_applied(self, small_data):
        tx, ty, vx, vy = small_data
        cfg = TrainerConfig(
            world_size=1, batch_size=32, epochs=2,
            lr_schedule=MultiStepSchedule(0.1, [1], gamma=0.1), seed=0,
        )
        tr = DataParallelTrainer(factory, tx, ty, vx, vy, cfg)
        hist = tr.train()
        assert hist.epochs[0].lr == pytest.approx(0.1)
        assert hist.epochs[1].lr == pytest.approx(0.01)

    def test_eval_every(self, small_data):
        tx, ty, vx, vy = small_data
        cfg = TrainerConfig(
            world_size=1, batch_size=32, epochs=3, eval_every=2,
            lr_schedule=ConstantSchedule(0.05),
        )
        tr = DataParallelTrainer(factory, tx, ty, vx, vy, cfg)
        hist = tr.train()
        evals = [e.val_accuracy is not None for e in hist.epochs]
        assert evals == [False, True, True]  # epoch 2 and final

    def test_replicas_start_identical(self, small_data):
        tr = make_trainer(small_data, world_size=3)
        s0 = tr.replicas[0].state_dict()
        for r in (1, 2):
            sr = tr.replicas[r].state_dict()
            for key in s0:
                np.testing.assert_array_equal(sr[key], s0[key])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(world_size=0)
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)


class TestHistory:
    def test_epochs_to_accuracy(self):
        hist = TrainingHistory(
            epochs=[
                EpochStats(0, 1.0, 0.3, 0.1, 10),
                EpochStats(1, 0.5, 0.7, 0.1, 10),
                EpochStats(2, 0.3, 0.9, 0.1, 10),
            ]
        )
        assert hist.epochs_to_accuracy(0.6) == 1
        assert hist.epochs_to_accuracy(0.95) is None
        assert hist.final_val_accuracy == 0.9
        assert hist.best_val_accuracy == 0.9

    def test_no_eval_raises(self):
        hist = TrainingHistory(epochs=[EpochStats(0, 1.0, None, 0.1, 5)])
        with pytest.raises(ValueError):
            _ = hist.final_val_accuracy
