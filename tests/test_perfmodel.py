"""Performance model: cost formulas, monotonicities, paper-shape criteria."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perfmodel.costs import (
    eig_flops,
    factor_flops,
    layer_factor_flops,
    layer_forward_flops,
    layer_precondition_flops,
    model_backward_flops,
    model_forward_flops,
)
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel, KfacIntervals
from repro.perfmodel.scaling import (
    IMAGENET_TRAIN_SIZE,
    PAPER_GPU_SCALES,
    ScalingStudy,
    improvement_table,
    scale_interval_schedule,
    worker_speedup_table,
)
from repro.perfmodel.specs import KfacLayerSpec, resnet_spec


def model(depth=50, batch=32):
    return IterationModel(resnet_spec(depth), V100_LIKE, FRONTERA_LIKE, batch)


class TestCosts:
    def test_layer_forward_flops(self):
        l = KfacLayerSpec("x", "conv", a_dim=9, g_dim=4, spatial_positions=16, weight_params=36)
        assert layer_forward_flops(l, 2) == 2 * 2 * 16 * 9 * 4

    def test_backward_is_twice_forward(self):
        spec = resnet_spec(50)
        assert model_backward_flops(spec, 8) == 2 * model_forward_flops(spec, 8)

    def test_resnet50_forward_flops_magnitude(self):
        """~4.1 GMACs per image (the standard ResNet-50 number)."""
        macs = model_forward_flops(resnet_spec(50), 1) / 2
        assert 3.5e9 < macs < 4.5e9

    def test_factor_flops_scale_with_batch(self):
        spec = resnet_spec(50)
        assert factor_flops(spec, 64) == pytest.approx(2 * factor_flops(spec, 32))

    def test_layer_factor_flops_formula(self):
        l = KfacLayerSpec("x", "conv", a_dim=3, g_dim=2, spatial_positions=4, weight_params=6)
        assert layer_factor_flops(l, 2) == 2 * 8 * (9 + 4)

    def test_eig_flops_cubic(self):
        assert eig_flops(10, coef=10.0) == 1e4

    def test_precondition_flops_formula(self):
        l = KfacLayerSpec("x", "linear", a_dim=3, g_dim=2, spatial_positions=1, weight_params=6)
        assert layer_precondition_flops(l) == 4 * (2 * 2 * 3 + 2 * 3 * 3)


class TestIterationModel:
    def test_sgd_iteration_time_positive_and_grows_with_p(self):
        im = model()
        t1 = im.sgd_iteration_time(1)
        t16 = im.sgd_iteration_time(16)
        t256 = im.sgd_iteration_time(256)
        assert 0 < t1 < t16 < t256

    def test_factor_compute_constant_in_p(self):
        """Paper Table V / Fig. 10: factor compute does not scale with P."""
        im = model()
        assert im.factor_compute_time() == im.factor_compute_time()

    def test_factor_compute_superlinear_in_model_size(self):
        t50 = model(50).factor_compute_time()
        t152 = model(152).factor_compute_time()
        param_ratio = resnet_spec(152).total_params / resnet_spec(50).total_params
        assert t152 / t50 > param_ratio

    def test_eig_stage_decreases_with_p(self):
        im = model()
        times = [im.eig_stage_time(p, "comm-opt") for p in (16, 32, 64)]
        assert times[0] >= times[1] >= times[2]

    def test_eig_stage_bounded_by_largest_factor(self):
        """At huge P the slowest worker still owns the biggest factor."""
        im = model()
        t_inf = im.eig_stage_time(4096, "comm-opt")
        biggest = max(m.dim for m in im._factor_metas)
        assert t_inf >= im._eig_seconds(biggest) - 1e-12

    def test_layer_wise_eig_slower_than_comm_opt_at_scale(self):
        """Once P reaches the layer count, per-factor assignment spreads a
        layer's two factors over different workers while layer-wise pins
        them together — so its barrier is strictly worse (§IV-C's doubled
        utilization).  (At small P round-robin gives no such guarantee.)"""
        im = model()
        n_layers = im.n_layers
        # at P == L round-robin degenerates to the layer-wise placement
        assert im.eig_stage_time(n_layers, "comm-opt") == pytest.approx(
            im.eig_stage_time(n_layers, "layer-wise")
        )
        # at P == 2L every factor gets its own worker: strictly better
        assert im.eig_stage_time(2 * n_layers, "comm-opt") < im.eig_stage_time(
            2 * n_layers, "layer-wise"
        )

    def test_greedy_assignment_reduces_imbalance(self):
        im = model()
        assert im.eig_stage_time(16, "comm-opt", "greedy") <= im.eig_stage_time(
            16, "comm-opt", "round_robin"
        )

    def test_kfac_opt_noncomm_iterations_cheaper_than_lw(self):
        """opt amortizes comm; lw pays an allgather every iteration."""
        im = model()
        intervals = KfacIntervals.from_eig_interval(500)
        assert im.kfac_iteration_time(64, "comm-opt", intervals) < im.kfac_iteration_time(
            64, "layer-wise", intervals
        )

    def test_epoch_time_decreases_with_p(self):
        im = model()
        intervals = KfacIntervals.from_eig_interval(500)
        e = [
            im.epoch_time(p, "kfac-opt", IMAGENET_TRAIN_SIZE, intervals)
            for p in (16, 64, 256)
        ]
        assert e[0] > e[1] > e[2]

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            KfacIntervals.from_eig_interval(0)
        im = model()
        with pytest.raises(ValueError):
            im.epoch_time(16, "kfac-opt", 1000)
        with pytest.raises(ValueError):
            im.epoch_time(16, "bogus", 1000, KfacIntervals.from_eig_interval(10))

    def test_stage_profile_fields(self):
        prof = model().stage_profile(16)
        assert prof.factor_tcomp > 0 and prof.eig_tcomp > prof.factor_tcomp


class TestPaperShape:
    """The qualitative reproduction criteria from DESIGN.md."""

    def test_interval_schedule(self):
        assert [scale_interval_schedule(g) for g in PAPER_GPU_SCALES] == [
            2000, 1000, 500, 250, 125,
        ]

    def test_kfac_opt_beats_sgd_resnet50_everywhere(self):
        for pt in ScalingStudy(depth=50).run():
            assert pt.improvement_opt() > 0.15, f"R50@{pt.gpus}"

    def test_lw_between_sgd_and_opt_at_moderate_scale(self):
        for pt in ScalingStudy(depth=50, gpus=(16, 32, 64)).run():
            assert pt.kfac_opt_minutes < pt.kfac_lw_minutes < pt.sgd_minutes

    def test_improvement_decreases_with_depth(self):
        table = improvement_table()
        for i, gpus in enumerate(PAPER_GPU_SCALES):
            assert table[50][i] > table[101][i] > table[152][i], f"@{gpus}"

    def test_resnet152_negative_at_256(self):
        """The paper's crossover: K-FAC-opt loses to SGD (Fig. 9 / Table IV)."""
        table = improvement_table(depths=(152,))
        assert table[152][-1] < 0

    def test_sgd_efficiency_trend(self):
        study = ScalingStudy(depth=50)
        eff = study.scaling_efficiency()
        sgd = eff["sgd"]
        assert all(a >= b for a, b in zip(sgd, sgd[1:]))
        assert 0.6 < sgd[3] < 0.8  # ~68.6% at 128 in the paper
        assert sgd[4] < 0.6  # "below 50%" at 256 (we land close)

    def test_opt_scales_better_than_lw(self):
        eff = ScalingStudy(depth=50).scaling_efficiency()
        assert eff["kfac-opt"][3] > eff["kfac-lw"][3]

    def test_worker_speedup_imbalance(self):
        """Fast workers speed up near-linearly; slow workers saturate."""
        speedups = worker_speedup_table(50, gpus=(16, 32, 64))
        assert speedups[16] == (1.0, 1.0)
        mn64, mx64 = speedups[64]
        assert mx64 > 4.0  # fastest worker benefits hugely
        assert mn64 < 2.0  # slowest barely improves (the paper's point)

    def test_sgd_resnet50_64gpu_anchor(self):
        """Absolute anchor: ~178 min for 90 epochs (Table III), +/-15%."""
        im = model()
        minutes = 90 * im.epoch_time(64, "sgd", IMAGENET_TRAIN_SIZE) / 60
        assert 150 < minutes < 205

    def test_table5_factor_anchor(self):
        """Factor Tcomp ~36.8 ms for ResNet-50 (Table V), +/-30%."""
        assert 0.026 < model(50).factor_compute_time() < 0.048

    def test_table5_eig_anchor(self):
        """Slowest-worker eig ~2.26 s for ResNet-50 @ 16 GPUs, +/-30%."""
        assert 1.6 < model(50).eig_stage_time(16, "comm-opt") < 2.9
