"""Remaining small-module behaviours: handles, logging, initializers."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.comm.handles import DeferredHandle, ImmediateHandle
from repro.tensor.dtypes import DEFAULT_DTYPE
from repro.tensor.initializers import kaiming_normal, kaiming_uniform, xavier_uniform, zeros_init
from repro.utils.logging import NULL_LOGGER, Logger


class TestHandles:
    def test_immediate(self):
        h = ImmediateHandle(42)
        assert h.done() and h.wait() == 42

    def test_deferred_runs_once(self):
        calls = []
        h = DeferredHandle(lambda: calls.append(1) or len(calls))
        assert not h.done()
        assert h.wait() == 1
        assert h.wait() == 1  # cached
        assert calls == [1]


class TestLogger:
    def test_levels(self):
        buf = io.StringIO()
        log = Logger("x", level=1, stream=buf)
        log.info("hello")
        log.debug("hidden")
        out = buf.getvalue()
        assert "hello" in out and "hidden" not in out

    def test_child_namespacing(self):
        buf = io.StringIO()
        Logger("a", level=2, stream=buf).child("b").debug("msg")
        assert "[a.b:debug]" in buf.getvalue()

    def test_null_logger_silent(self, capsys):
        NULL_LOGGER.info("nope")
        assert capsys.readouterr().out == ""


class TestInitializers:
    def test_kaiming_normal_fanout_std(self, rng):
        w = kaiming_normal((256, 128, 3, 3), rng)
        expect = np.sqrt(2.0 / (256 * 9))
        assert w.std() == pytest.approx(expect, rel=0.05)
        assert w.dtype == np.dtype(DEFAULT_DTYPE)

    def test_kaiming_uniform_bounds(self, rng):
        w = kaiming_uniform((64, 100), rng)
        fan_in = 100
        gain = np.sqrt(2.0 / (1.0 + 5.0))
        bound = gain * np.sqrt(3.0 / fan_in)
        assert np.abs(w).max() <= bound + 1e-7

    def test_xavier_symmetric(self, rng):
        w = xavier_uniform((50, 50), rng)
        assert abs(w.mean()) < 0.02

    def test_zeros(self):
        w = zeros_init((3, 3))
        assert not w.any() and w.dtype == np.dtype(DEFAULT_DTYPE)

    def test_unsupported_shape(self, rng):
        with pytest.raises(ValueError):
            kaiming_normal((2, 3, 4), rng)
