"""Fusion buffer and Horovod-like frontend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.backend import World
from repro.comm.fusion import FusionBuffer
from repro.comm.horovod import DistributedOptimizer, HorovodContext
from repro.nn.layers import Linear
from repro.optim.sgd import SGD
from tests.conftest import build_tiny_cnn


class TestFusionBuffer:
    def test_pop_returns_average(self, rng):
        w = World(2)
        fb = FusionBuffer(w, capacity_bytes=1 << 30)
        tensors = [rng.normal(size=(3, 2)) for _ in range(2)]
        fb.add("t", tensors)
        out = fb.pop("t")
        np.testing.assert_allclose(out[0], (tensors[0] + tensors[1]) / 2, rtol=1e-12)

    def test_flush_on_capacity(self):
        w = World(2)
        fb = FusionBuffer(w, capacity_bytes=100)
        fb.add("a", [np.ones(20), np.ones(20)])  # 160 bytes -> flush
        assert fb.flush_count == 1
        assert fb.pending_bytes == 0

    def test_fusion_reduces_op_count(self, rng):
        """10 tensors fused into one collective launch."""
        w = World(2)
        fb = FusionBuffer(w, capacity_bytes=1 << 30, phase="fused")
        for i in range(10):
            fb.add(f"t{i}", [rng.normal(size=16) for _ in range(2)])
        fb.flush()
        assert w.stats.ops_by_phase["fused"] == 1

    def test_results_preserve_shape(self, rng):
        w = World(2)
        fb = FusionBuffer(w, capacity_bytes=1 << 30)
        fb.add("m", [rng.normal(size=(2, 3, 4)) for _ in range(2)])
        assert fb.pop("m")[0].shape == (2, 3, 4)

    def test_duplicate_name_raises(self, rng):
        w = World(2)
        fb = FusionBuffer(w, capacity_bytes=1 << 30)
        fb.add("x", [np.ones(1), np.ones(1)])
        with pytest.raises(ValueError):
            fb.add("x", [np.ones(1), np.ones(1)])

    def test_unknown_pop_raises(self):
        fb = FusionBuffer(World(2), capacity_bytes=100)
        with pytest.raises(KeyError):
            fb.pop("never-added")

    def test_fused_equals_unfused_values(self, rng):
        w1, w2 = World(3), World(3)
        tensors = {f"t{i}": [rng.normal(size=7) for _ in range(3)] for i in range(4)}
        fb = FusionBuffer(w1, capacity_bytes=1 << 30)
        for name, group in tensors.items():
            fb.add(name, group)
        fb.flush()
        for name, group in tensors.items():
            fused = fb.pop(name)
            direct = w2.allreduce(group, op="average")
            for a, b in zip(fused, direct):
                np.testing.assert_allclose(a, b, rtol=1e-12)


class TestHorovodFrontend:
    def test_listing1_flow(self):
        """The paper's Listing 1: synchronize -> precondition -> skip+step."""
        w = World(2)

        def program(view):
            hvd = HorovodContext(view)
            rng = np.random.default_rng(0)  # same init on both ranks
            model = build_tiny_cnn(seed=0)
            hvd.broadcast_parameters(model)
            opt = SGD(model.parameters(), lr=0.1)
            dopt = DistributedOptimizer(opt, hvd, model.named_parameters())
            x = np.random.default_rng(view.rank).normal(size=(4, 1, 8, 8)).astype(np.float32)
            out = model(x)
            model.backward(np.ones_like(out) / out.size)
            dopt.synchronize()
            with dopt.skip_synchronize():
                dopt.step()
            del rng
            return model.state_dict()

        states = w.run_spmd(program, timeout=30)
        for key in states[0]:
            np.testing.assert_allclose(states[0][key], states[1][key], rtol=1e-5, atol=1e-7)

    def test_step_synchronizes_implicitly(self):
        w = World(2)

        def program(view):
            hvd = HorovodContext(view)
            lin = Linear(2, 2, rng=np.random.default_rng(3))
            opt = DistributedOptimizer(SGD(lin.parameters(), lr=1.0), hvd, lin.named_parameters())
            lin.weight.grad[...] = float(view.rank)  # avg -> 0.5
            before = lin.weight.data.copy()
            opt.step()
            return before - lin.weight.data

        deltas = w.run_spmd(program, timeout=10)
        np.testing.assert_allclose(deltas[0], np.full((2, 2), 0.5), rtol=1e-6)

    def test_allreduce_async_handle(self):
        w = World(2)

        def program(view):
            hvd = HorovodContext(view)
            h = hvd.allreduce_async_(np.full(2, float(view.rank)), name="h")
            assert not h.done()
            out = hvd.synchronize(h)
            assert h.done()
            return out

        results = w.run_spmd(program, timeout=10)
        np.testing.assert_allclose(results[0], np.full(2, 0.5))

    def test_broadcast_parameters_syncs_buffers(self):
        w = World(2)

        def program(view):
            hvd = HorovodContext(view)
            model = build_tiny_cnn(seed=view.rank)  # different init per rank
            hvd.broadcast_parameters(model, root=0)
            return model.state_dict()

        states = w.run_spmd(program, timeout=30)
        for key in states[0]:
            np.testing.assert_array_equal(states[0][key], states[1][key])
