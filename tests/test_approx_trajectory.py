"""Trajectory parity for the approximation tier (:mod:`repro.approx`).

The lock-down guarantee: ``KFAC(diag_blocks=1)`` with the drift trigger
off is *the seed code path* — every weight of every parity-matrix config
(strategy x world size x wire dtype x scheduler) must match the baseline
bitwise after training.  The approximation itself (``diag_blocks=4``)
then only has to be *bounded*: the blocked run must actually engage
:class:`~repro.approx.blockeig.BlockFactorEig`, stay finite, and land
within a loose loss band of the exact run on the smoke model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx.blockeig import BlockFactorEig
from repro.core.distributed import LocalDriver
from repro.core.preconditioner import COMM_OPT, HYBRID, LAYER_WISE, KFAC
from repro.nn.loss import CrossEntropyLoss
from repro.optim.sgd import SGD
from tests.conftest import build_tiny_cnn
from tests.test_grad_worker_frac import run_hybrid

_BASELINES: dict = {}


def _baseline(key, **kw):
    if key not in _BASELINES:
        _BASELINES[key] = run_hybrid(**kw)
    return _BASELINES[key]


_MATRIX = [
    pytest.param(strategy, p, precision, scheduler, id=f"{strategy}-p{p}-{precision}-{scheduler}")
    for strategy in (COMM_OPT, LAYER_WISE, HYBRID)
    for p in (1, 2, 4)
    for precision in ("fp32", "fp16")
    for scheduler in ("sync", "graph")
]


class TestExactParity:
    @pytest.mark.parametrize("strategy,p,precision,scheduler", _MATRIX)
    def test_diag_blocks_one_drift_off_bitwise(self, strategy, p, precision, scheduler):
        kw = dict(strategy=strategy, scheduler=scheduler, steps=4)
        if strategy == HYBRID:
            kw["grad_worker_frac"] = 0.5
        if precision == "fp16":
            kw["comm_dtype"] = "fp16"
        base = _baseline((strategy, p, precision, scheduler), world_size=p, **kw)
        approx = run_hybrid(
            p, diag_blocks=1, diag_warmup=0, drift_tol=None, **kw
        )
        assert base.keys() == approx.keys()
        for name in base:
            np.testing.assert_array_equal(
                base[name], approx[name], err_msg=f"{name} diverged"
            )


def _train_local(steps: int, **kfac_kw):
    """Single-process training loop returning (final loss, kfac)."""
    rng = np.random.default_rng(7)
    x = rng.normal(size=(32, 1, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, size=32).astype(np.int64)
    model = build_tiny_cnn(seed=11)
    kfac = KFAC(
        model, damping=0.01, kfac_update_freq=1, fac_update_freq=1, lr=0.1, **kfac_kw
    )
    driver = LocalDriver(kfac)
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    loss_fn = CrossEntropyLoss()
    loss = np.inf
    for _ in range(steps):
        opt.zero_grad()
        out = model(x)
        loss = loss_fn(out, y)
        model.backward(loss_fn.backward())
        driver.step()
        opt.step()
    return float(loss), kfac


class TestBlockedApproximation:
    def test_diag_blocks_four_bounded_loss(self):
        exact_loss, _ = _train_local(steps=8)
        blocked_loss, kfac = _train_local(steps=8, diag_blocks=4, diag_warmup=1)
        # the approximation engaged on the wide layers...
        assert kfac.blocks_active
        blocked_layers = [
            l.name
            for l in kfac.layers
            if isinstance(l.eig_A, BlockFactorEig)
            or isinstance(l.eig_G, BlockFactorEig)
        ]
        assert blocked_layers, "no layer ever installed a BlockFactorEig"
        # ...and still optimizes: finite, and within a loose band of exact
        assert np.isfinite(blocked_loss)
        assert blocked_loss < exact_loss + 0.5

    def test_diag_blocks_four_spmd_matches_phase(self):
        """Blocked runs stay deterministic across driver implementations."""
        kw = dict(steps=6, diag_blocks=4, diag_warmup=1, strategy=COMM_OPT)
        phase = run_hybrid(2, **kw)
        spmd = run_hybrid(2, driver="spmd", **kw)
        for name in phase:
            np.testing.assert_array_equal(phase[name], spmd[name])
