"""Layer forward/backward correctness (numerical gradient checks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.transformer import (
    Embedding,
    LayerNorm,
    MultiHeadAttention,
    TinyTransformer,
    TransformerBlock,
)
from tests.conftest import numerical_gradient


def cast_params64(module):
    """Promote every parameter to float64 for tight gradient checks."""
    for _, p in module.named_parameters():
        p.data = p.data.astype(np.float64)
        p.grad = np.zeros_like(p.data)


def check_input_grad(layer, x, rtol=2e-3, atol=2e-4):
    """Backward pass against central differences on sum(out^2)/2."""
    x64 = x.astype(np.float64)

    def loss():
        return 0.5 * float((layer.forward(x64) ** 2).sum())

    out = layer.forward(x64)
    analytic = layer.backward(out)
    numeric = numerical_gradient(loss, x64)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_param_grad(layer, x, param, rtol=2e-3, atol=2e-4):
    x64 = x.astype(np.float64)
    param.data = param.data.astype(np.float64)
    param.grad = np.zeros_like(param.data)

    def loss():
        return 0.5 * float((layer.forward(x64) ** 2).sum())

    out = layer.forward(x64)
    param.zero_grad()
    layer.backward(out)
    numeric = numerical_gradient(loss, param.data)
    np.testing.assert_allclose(param.grad, numeric, rtol=rtol, atol=atol)


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        lin = Linear(5, 3, rng=rng)
        x = rng.normal(size=(4, 5)).astype(np.float32)
        want = x @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(lin.forward(x), want, rtol=1e-6)

    def test_rejects_bad_rank(self, rng):
        with pytest.raises(ValueError):
            Linear(5, 3, rng=rng).forward(rng.normal(size=(2, 5, 1)))

    def test_input_grad(self, rng):
        lin = Linear(4, 3, rng=rng)
        lin.weight.data = lin.weight.data.astype(np.float64)
        lin.bias.data = lin.bias.data.astype(np.float64)
        check_input_grad(lin, rng.normal(size=(3, 4)))

    def test_weight_grad(self, rng):
        lin = Linear(4, 3, rng=rng)
        check_param_grad(lin, rng.normal(size=(3, 4)), lin.weight)

    def test_bias_grad(self, rng):
        lin = Linear(4, 3, rng=rng)
        check_param_grad(lin, rng.normal(size=(3, 4)), lin.bias)

    def test_grad_accumulates(self, rng):
        lin = Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4)).astype(np.float32)
        g = rng.normal(size=(2, 3)).astype(np.float32)
        lin.forward(x)
        lin.backward(g)
        first = lin.weight.grad.copy()
        lin.forward(x)
        lin.backward(g)
        np.testing.assert_allclose(lin.weight.grad, 2 * first, rtol=1e-6)

    def test_no_bias(self, rng):
        lin = Linear(4, 3, bias=False, rng=rng)
        assert lin.bias is None
        x = rng.normal(size=(2, 4)).astype(np.float32)
        np.testing.assert_allclose(lin.forward(x), x @ lin.weight.data.T, rtol=1e-6)


class TestConv2d:
    def test_forward_matches_naive(self, rng):
        conv = Conv2d(2, 3, 3, stride=1, padding=1, bias=True, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        out = conv.forward(x)
        # naive direct convolution
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        want = np.zeros_like(out)
        for b in range(2):
            for o in range(3):
                for i in range(5):
                    for j in range(5):
                        patch = xp[b, :, i : i + 3, j : j + 3]
                        want[b, o, i, j] = (patch * conv.weight.data[o]).sum() + conv.bias.data[o]
        np.testing.assert_allclose(out, want, rtol=1e-4, atol=1e-5)

    def test_out_shape(self, rng):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert conv.out_shape((4, 3, 16, 16)) == (4, 8, 8, 8)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            Conv2d(3, 8, 3, rng=rng).forward(rng.normal(size=(1, 2, 8, 8)))

    def test_input_grad(self, rng):
        conv = Conv2d(2, 3, 3, stride=2, padding=1, bias=True, rng=rng)
        conv.weight.data = conv.weight.data.astype(np.float64)
        conv.bias.data = conv.bias.data.astype(np.float64)
        check_input_grad(conv, rng.normal(size=(2, 2, 5, 5)))

    def test_weight_grad(self, rng):
        conv = Conv2d(2, 2, 3, stride=1, padding=1, bias=True, rng=rng)
        check_param_grad(conv, rng.normal(size=(2, 2, 4, 4)), conv.weight)

    def test_bias_grad(self, rng):
        conv = Conv2d(2, 2, 3, stride=1, padding=0, bias=True, rng=rng)
        check_param_grad(conv, rng.normal(size=(2, 2, 4, 4)), conv.bias)


class TestBatchNorm2d:
    def test_forward_normalizes(self, rng):
        bn = BatchNorm2d(4)
        x = rng.normal(3.0, 2.5, size=(8, 4, 5, 5)).astype(np.float32)
        out = bn.forward(x)
        assert abs(out.mean()) < 1e-5
        assert out.std() == pytest.approx(1.0, rel=1e-2)

    def test_running_stats_updated(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = rng.normal(1.0, 2.0, size=(16, 2, 4, 4)).astype(np.float32)
        bn.forward(x)
        assert np.all(bn.running_mean != 0)
        assert np.all(bn.running_var != 1)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2, momentum=1.0)  # adopt batch stats fully
        x = rng.normal(2.0, 3.0, size=(32, 2, 6, 6)).astype(np.float32)
        bn.forward(x)
        bn.eval()
        out = bn.forward(x)
        # normalized with (nearly) the batch statistics -> ~standardized
        assert abs(out.mean()) < 0.05
        assert out.std() == pytest.approx(1.0, rel=0.05)

    def test_input_grad(self, rng):
        bn = BatchNorm2d(2)
        bn.weight.data = rng.normal(1.0, 0.2, size=2)
        bn.bias.data = rng.normal(0.0, 0.2, size=2)
        check_input_grad(bn, rng.normal(size=(3, 2, 3, 3)), rtol=5e-3, atol=5e-4)

    def test_affine_grads(self, rng):
        bn = BatchNorm2d(2)
        check_param_grad(bn, rng.normal(size=(4, 2, 3, 3)), bn.weight, rtol=5e-3)
        bn2 = BatchNorm2d(2)
        check_param_grad(bn2, rng.normal(size=(4, 2, 3, 3)), bn2.bias, rtol=5e-3)

    def test_rejects_wrong_channels(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(3).forward(rng.normal(size=(2, 2, 4, 4)))


class TestReLU:
    def test_forward(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(relu.forward(x), [[0.0, 0.0, 2.0]])

    def test_backward_mask(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.5, 2.0]], dtype=np.float32)
        relu.forward(x)
        g = np.ones_like(x)
        np.testing.assert_array_equal(relu.backward(g), [[0.0, 1.0, 1.0]])


class TestPooling:
    def test_maxpool_forward(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        pool.forward(x)
        g = np.ones((1, 1, 2, 2), dtype=np.float32)
        dx = pool.backward(g)
        want = np.zeros((4, 4))
        want[1, 1] = want[1, 3] = want[3, 1] = want[3, 3] = 1.0
        np.testing.assert_array_equal(dx[0, 0], want)

    def test_maxpool_padded_stride(self, rng):
        """ImageNet-stem config: 3x3 kernel, stride 2, padding 1."""
        pool = MaxPool2d(3, stride=2, padding=1)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        out = pool.forward(x)
        assert out.shape == (2, 3, 4, 4)
        dx = pool.backward(np.ones_like(out))
        assert dx.shape == x.shape
        # gradient mass is conserved (each output picks exactly one input)
        assert dx.sum() == pytest.approx(out.size)

    def test_avgpool_input_grad(self, rng):
        pool = AvgPool2d(2)
        check_input_grad(pool, rng.normal(size=(2, 2, 4, 4)))

    def test_global_avgpool(self, rng):
        pool = GlobalAvgPool2d()
        x = rng.normal(size=(3, 4, 5, 5)).astype(np.float32)
        np.testing.assert_allclose(pool.forward(x), x.mean(axis=(2, 3)), rtol=1e-6)
        check_input_grad(pool, rng.normal(size=(2, 3, 4, 4)))


class TestLayerNorm:
    def test_forward_normalizes_last_axis(self, rng):
        ln = LayerNorm(6)
        x = rng.normal(3.0, 2.0, size=(4, 5, 6)).astype(np.float32)
        out = ln.forward(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, rtol=1e-3)

    def test_rejects_wrong_trailing_dim(self, rng):
        with pytest.raises(ValueError):
            LayerNorm(5).forward(rng.normal(size=(2, 4)))

    def test_input_grad(self, rng):
        ln = LayerNorm(5)
        cast_params64(ln)
        ln.weight.data = rng.normal(1.0, 0.2, size=5)
        ln.bias.data = rng.normal(0.0, 0.2, size=5)
        check_input_grad(ln, rng.normal(size=(3, 4, 5)), rtol=5e-3, atol=5e-4)

    def test_affine_grads(self, rng):
        ln = LayerNorm(5)
        check_param_grad(ln, rng.normal(size=(3, 4, 5)), ln.weight, rtol=5e-3)
        ln2 = LayerNorm(5)
        check_param_grad(ln2, rng.normal(size=(3, 4, 5)), ln2.bias, rtol=5e-3)

    def test_caches_normalized_activations(self, rng):
        ln = LayerNorm(4)
        x = rng.normal(size=(2, 3, 4)).astype(np.float32)
        assert ln.cached_normalized is None
        ln.forward(x)
        x_hat = ln.cached_normalized
        assert x_hat is not None and x_hat.shape == x.shape
        np.testing.assert_allclose(x_hat.mean(axis=-1), 0.0, atol=1e-5)


class TestEmbedding:
    def test_forward_gathers_rows(self, rng):
        emb = Embedding(7, 3, rng=rng)
        idx = np.array([[0, 6], [2, 2]])
        out = emb.forward(idx)
        np.testing.assert_array_equal(out, emb.weight.data[idx])

    def test_rejects_float_indices(self, rng):
        with pytest.raises(ValueError):
            Embedding(5, 2, rng=rng).forward(np.array([0.0, 1.0]))

    def test_weight_grad_matches_numerical(self, rng):
        """check_param_grad casts inputs to float64, which an integer-index
        layer rejects — so run the same central-difference check by hand."""
        emb = Embedding(6, 4, rng=rng)
        cast_params64(emb)
        idx = rng.integers(0, 6, size=(3, 5))

        def loss():
            return 0.5 * float((emb.forward(idx) ** 2).sum())

        out = emb.forward(idx)
        emb.weight.zero_grad()
        emb.backward(out)
        numeric = numerical_gradient(loss, emb.weight.data)
        np.testing.assert_allclose(emb.weight.grad, numeric, rtol=2e-3, atol=2e-4)

    def test_repeated_indices_accumulate(self, rng):
        emb = Embedding(4, 2, rng=rng)
        idx = np.array([1, 1, 1])
        emb.forward(idx)
        emb.backward(np.ones((3, 2), dtype=np.float32))
        np.testing.assert_allclose(emb.weight.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestMultiHeadAttention:
    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng=rng)  # dim not divisible by heads
        mha = MultiHeadAttention(8, 2, rng=rng)
        with pytest.raises(ValueError):
            mha.forward(rng.normal(size=(2, 8)).astype(np.float32))

    def test_input_grad(self, rng):
        mha = MultiHeadAttention(6, 2, rng=rng)
        cast_params64(mha)
        check_input_grad(mha, rng.normal(size=(2, 3, 6)), rtol=5e-3, atol=5e-4)

    def test_projection_param_grads(self, rng):
        for pick in ("q_proj", "k_proj", "v_proj", "out_proj"):
            mha = MultiHeadAttention(4, 2, rng=rng)
            check_param_grad(
                mha, rng.normal(size=(2, 3, 4)), getattr(mha, pick).weight,
                rtol=5e-3, atol=5e-4,
            )


class TestTransformerBlock:
    def test_input_grad(self, rng):
        blk = TransformerBlock(4, num_heads=2, rng=rng)
        cast_params64(blk)
        check_input_grad(blk, rng.normal(size=(2, 3, 4)), rtol=5e-3, atol=5e-4)

    def test_param_grads_through_residuals(self, rng):
        for pick in (
            lambda b: b.norm1.weight,
            lambda b: b.attn.q_proj.weight,
            lambda b: b.fc1.weight,
            lambda b: b.fc2.bias,
        ):
            blk = TransformerBlock(4, num_heads=2, rng=rng)
            cast_params64(blk)
            check_param_grad(
                blk, rng.normal(size=(2, 3, 4)), pick(blk), rtol=5e-3, atol=5e-4
            )


class TestTinyTransformer:
    def test_embedding_grads_match_numerical(self, rng):
        model = TinyTransformer(
            vocab_size=8, seq_len=4, dim=4, num_heads=2, depth=1,
            num_classes=3, rng=rng,
        )
        cast_params64(model)
        tokens = rng.integers(0, 8, size=(3, 4))

        def loss():
            return 0.5 * float((model.forward(tokens) ** 2).sum())

        out = model.forward(tokens)
        for _, p in model.named_parameters():
            p.zero_grad()
        model.backward(out)
        for param in (model.tok_embed.weight, model.head.weight):
            numeric = numerical_gradient(loss, param.data)
            np.testing.assert_allclose(param.grad, numeric, rtol=5e-3, atol=5e-4)


class TestShapes:
    def test_flatten_roundtrip(self, rng):
        f = Flatten()
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        out = f.forward(x)
        assert out.shape == (2, 48)
        np.testing.assert_array_equal(f.backward(out), x)

    def test_identity(self, rng):
        ident = Identity()
        x = rng.normal(size=(2, 3)).astype(np.float32)
        assert ident.forward(x) is x
        assert ident.backward(x) is x
