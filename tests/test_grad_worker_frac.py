"""KAISA-style ``grad_worker_frac`` — the placement-spectrum guarantees.

The gradient-worker fraction must be a *strict generalization* of the
paper's two strategies:

1. ``f = 1/P`` trajectories bit-match ``strategy=LAYER_WISE`` and
   ``f = 1`` bit-matches ``COMM_OPT``, for P in {2, 4, 7} — including
   with ``comm_dtype="fp16"`` and ``symmetric_comm=True`` (the group
   protocol moves eigenbases and preconditioned gradients losslessly, so
   only the placement changes, never the math);
2. intermediate fractions stay on the single-worker trajectory within
   the distributed-equivalence tolerance;
3. the communication profile interpolates: eigenbasis-share bytes shrink
   and second-stage broadcast bytes grow as ``f`` decreases, with the
   endpoints matching the existing strategies' phase sets;
4. the threaded SPMD driver and the pipelined engine agree with the
   lockstep phase driver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.backend import World
from repro.comm.horovod import HorovodContext
from repro.core.assignment import (
    build_group_placement,
    grad_worker_count,
    grad_worker_groups,
    greedy_balanced_assignment,
    round_robin_assignment,
)
from repro.core.distributed import PhaseController, SPMDDriver
from repro.core.preconditioner import COMM_OPT, HYBRID, LAYER_WISE, KFAC, KFACHyperParams
from repro.nn.loss import CrossEntropyLoss
from repro.optim.sgd import SGD
from tests.conftest import build_tiny_cnn

N_SAMPLES = 28  # divisible by every tested world size (2, 4, 7)


def run_hybrid(
    world_size: int,
    steps: int = 4,
    seed: int = 42,
    driver: str = "phase",
    return_world: bool = False,
    **kfac_kw,
):
    """Train the tiny CNN data-parallel with K-FAC; return final weights."""
    kw = dict(damping=0.01, kfac_update_freq=2, fac_update_freq=1, lr=0.1)
    kw.update(kfac_kw)
    rng = np.random.default_rng(99)
    x = rng.normal(size=(N_SAMPLES, 1, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, size=N_SAMPLES).astype(np.int64)
    idx = [np.arange(r, N_SAMPLES, world_size) for r in range(world_size)]
    world = World(world_size)

    if driver == "spmd":

        def program(view):
            model = build_tiny_cnn(seed=seed)
            kfac = KFAC(model, rank=view.rank, world_size=world_size, **kw)
            drv = SPMDDriver(kfac, HorovodContext(view))
            opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
            loss_fn = CrossEntropyLoss()
            for _ in range(steps):
                opt.zero_grad()
                out = model(x[idx[view.rank]])
                loss_fn(out, y[idx[view.rank]])
                model.backward(loss_fn.backward())
                for name, p in model.named_parameters():
                    p.grad[...] = view.allreduce(p.grad, name=f"g:{name}", op="average")
                drv.step()
                opt.step()
            return model.state_dict()

        state = world.run_spmd(program, timeout=60)[0]
        return (state, world) if return_world else state

    models = [build_tiny_cnn(seed=seed) for _ in range(world_size)]
    kfacs = [KFAC(m, rank=r, world_size=world_size, **kw) for r, m in enumerate(models)]
    controller = PhaseController(kfacs, world)
    opts = [SGD(m.parameters(), lr=0.1, momentum=0.9) for m in models]
    losses = [CrossEntropyLoss() for _ in range(world_size)]
    for _ in range(steps):
        for r in range(world_size):
            opts[r].zero_grad()
            out = models[r](x[idx[r]])
            losses[r](out, y[idx[r]])
            models[r].backward(losses[r].backward())
        params = [list(m.parameters()) for m in models]
        for j in range(len(params[0])):
            reduced = world.allreduce([params[r][j].grad for r in range(world_size)])
            for r in range(world_size):
                params[r][j].grad[...] = reduced[r]
        controller.step()
        for opt in opts:
            opt.step()
    state = models[0].state_dict()
    return (state, world) if return_world else state


class TestGroupConstruction:
    def test_group_size_endpoints(self):
        assert grad_worker_count(8, 1 / 8) == 1
        assert grad_worker_count(8, 1.0) == 8
        assert grad_worker_count(7, 0.5) == 4  # round(3.5) banker's -> 4? no: 3.5 rounds to 4
        assert grad_worker_count(64, 1 / 64) == 1

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            grad_worker_count(4, 0.0)
        with pytest.raises(ValueError):
            grad_worker_count(4, 1.5)

    def test_singleton_groups_are_layer_wise(self):
        groups = grad_worker_groups(["a", "b", "c", "d", "e"], 3, 1 / 3)
        assert groups == {"a": (0,), "b": (1,), "c": (2,), "d": (0,), "e": (1,)}

    def test_world_group_is_canonical(self):
        groups = grad_worker_groups(["a", "b"], 4, 1.0)
        assert groups["a"] == groups["b"] == (0, 1, 2, 3)

    def test_contiguous_windows_wrap(self):
        groups = grad_worker_groups(["l0", "l1", "l2", "l3"], 4, 0.5)
        assert groups["l3"] == (3, 0)
        assert all(grp[0] == i % 4 for i, grp in enumerate(groups.values()))

    def test_assignment_degenerates_to_global_policies_at_f1(self):
        metas = KFAC(build_tiny_cnn(), world_size=1)._factor_metas
        for n in (2, 4, 7):
            rr = build_group_placement(metas, n, 1.0, policy="round_robin")
            assert rr.assignment == round_robin_assignment(metas, n)
            gr = build_group_placement(metas, n, 1.0, policy="greedy")
            assert gr.assignment == greedy_balanced_assignment(metas, n)

    def test_assignment_stays_in_group(self):
        metas = KFAC(build_tiny_cnn(), world_size=1)._factor_metas
        for policy in ("round_robin", "greedy"):
            gp = build_group_placement(metas, 5, 0.4, policy=policy)
            for meta in metas:
                assert gp.assignment[meta.key] in gp.groups[meta.layer]

    def test_hyperparam_strategy_wiring(self):
        hp = KFACHyperParams(grad_worker_frac=0.5)
        assert hp.strategy == HYBRID
        with pytest.raises(ValueError):
            KFACHyperParams(grad_worker_frac=0.5, strategy=LAYER_WISE)
        with pytest.raises(ValueError):
            KFACHyperParams(strategy=HYBRID)  # frac missing
        with pytest.raises(ValueError):
            KFACHyperParams(grad_worker_frac=0.0)

    def test_kfac_exposes_placement(self):
        model = build_tiny_cnn()
        kfac = KFAC(model, rank=0, world_size=4, grad_worker_frac=0.5)
        assert kfac.grad_worker_count == 2
        placement = kfac.grad_worker_placement
        assert placement is not None
        for layer in kfac.layers:
            assert placement.root(layer.name) == placement.groups[layer.name][0]
        # COMM_OPT/LAYER_WISE report their implicit group sizes
        assert KFAC(build_tiny_cnn(), world_size=4).grad_worker_count == 4
        assert (
            KFAC(build_tiny_cnn(), world_size=4, strategy=LAYER_WISE).grad_worker_count
            == 1
        )


class TestEndpointEquivalence:
    """f=1/P bit-matches LAYER_WISE; f=1 bit-matches COMM_OPT."""

    @pytest.mark.parametrize("world_size", [2, 4, 7])
    def test_f_one_bit_matches_comm_opt(self, world_size):
        ref = run_hybrid(world_size, strategy=COMM_OPT)
        hybrid = run_hybrid(world_size, grad_worker_frac=1.0)
        for key in ref:
            assert np.array_equal(hybrid[key], ref[key]), key

    @pytest.mark.parametrize("world_size", [2, 4, 7])
    def test_f_inv_p_bit_matches_layer_wise(self, world_size):
        ref = run_hybrid(world_size, strategy=LAYER_WISE)
        hybrid = run_hybrid(world_size, grad_worker_frac=1.0 / world_size)
        for key in ref:
            assert np.array_equal(hybrid[key], ref[key]), key

    @pytest.mark.parametrize("world_size", [2, 4, 7])
    @pytest.mark.parametrize(
        "extra",
        [
            dict(comm_dtype="fp16"),
            dict(symmetric_comm=True),
            dict(comm_dtype="fp16", symmetric_comm=True),
        ],
        ids=["fp16", "symmetric", "fp16+symmetric"],
    )
    def test_endpoints_with_compressed_and_packed_comm(self, world_size, extra):
        ref_opt = run_hybrid(world_size, strategy=COMM_OPT, **extra)
        hybrid_one = run_hybrid(world_size, grad_worker_frac=1.0, **extra)
        ref_lw = run_hybrid(world_size, strategy=LAYER_WISE, **extra)
        hybrid_lw = run_hybrid(world_size, grad_worker_frac=1.0 / world_size, **extra)
        for key in ref_opt:
            assert np.array_equal(hybrid_one[key], ref_opt[key]), key
            assert np.array_equal(hybrid_lw[key], ref_lw[key]), key

    def test_endpoints_with_inverse_mode_and_greedy(self):
        ref = run_hybrid(3, strategy=COMM_OPT, use_eigen_decomp=False, assignment="greedy")
        hybrid = run_hybrid(3, grad_worker_frac=1.0, use_eigen_decomp=False, assignment="greedy")
        for key in ref:
            assert np.array_equal(hybrid[key], ref[key]), key


class TestIntermediateFractions:
    @pytest.mark.parametrize("world_size,frac", [(4, 0.5), (7, 3 / 7), (7, 5 / 7)])
    def test_matches_single_worker_trajectory(self, world_size, frac):
        ref = run_hybrid(1)
        dist = run_hybrid(world_size, grad_worker_frac=frac)
        for key in ref:
            np.testing.assert_allclose(
                dist[key], ref[key], rtol=2e-4, atol=2e-5,
                err_msg=f"divergence in {key} at P={world_size}, f={frac}",
            )

    def test_all_replicas_converge_identically(self):
        """Non-grad-workers must end up with the same weights as workers."""
        world = World(4)
        models = [build_tiny_cnn(seed=7) for _ in range(4)]
        kfacs = [
            KFAC(m, rank=r, world_size=4, damping=0.01, grad_worker_frac=0.5)
            for r, m in enumerate(models)
        ]
        controller = PhaseController(kfacs, world)
        opts = [SGD(m.parameters(), lr=0.1) for m in models]
        losses = [CrossEntropyLoss() for _ in range(4)]
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=16).astype(np.int64)
        for step in range(3):
            for r in range(4):
                opts[r].zero_grad()
                out = models[r](x[r * 4 : (r + 1) * 4])
                losses[r](out, y[r * 4 : (r + 1) * 4])
                models[r].backward(losses[r].backward())
            params = [list(m.parameters()) for m in models]
            for j in range(len(params[0])):
                reduced = world.allreduce([params[r][j].grad for r in range(4)])
                for r in range(4):
                    params[r][j].grad[...] = reduced[r]
            controller.step()
            for opt in opts:
                opt.step()
            s0 = models[0].state_dict()
            for r in (1, 2, 3):
                sr = models[r].state_dict()
                for key in s0:
                    if key.startswith("buffer:"):
                        continue  # BN running stats are legitimately local
                    np.testing.assert_array_equal(
                        sr[key], s0[key],
                        err_msg=f"replica {r} diverged at step {step}: {key}",
                    )

    def test_greedy_assignment_numerically_identical(self):
        rr = run_hybrid(4, grad_worker_frac=0.5, assignment="round_robin")
        greedy = run_hybrid(4, grad_worker_frac=0.5, assignment="greedy")
        for key in rr:
            np.testing.assert_allclose(greedy[key], rr[key], rtol=1e-5, atol=1e-7)


class TestCommunicationProfile:
    def test_phase_set_interpolates(self):
        """f=1: eig_comm, no precond_comm; f=1/P: precond_comm, no eig_comm."""
        _, w_one = run_hybrid(4, grad_worker_frac=1.0, return_world=True)
        assert "eig_comm" in w_one.stats.bytes_by_phase
        assert "precond_comm" not in w_one.stats.bytes_by_phase
        _, w_lw = run_hybrid(4, grad_worker_frac=0.25, return_world=True)
        assert "eig_comm" not in w_lw.stats.bytes_by_phase
        assert "precond_comm" in w_lw.stats.bytes_by_phase
        _, w_mid = run_hybrid(4, grad_worker_frac=0.5, return_world=True)
        assert "eig_comm" in w_mid.stats.bytes_by_phase
        assert "precond_comm" in w_mid.stats.bytes_by_phase

    def test_second_stage_bytes_grow_as_f_shrinks(self):
        """Broadcast volume rises monotonically toward the LAYER_WISE end."""
        seen = []
        for f in (1.0, 0.75, 0.5, 0.25):
            _, world = run_hybrid(4, grad_worker_frac=f, return_world=True)
            seen.append(world.stats.bytes_by_phase.get("precond_comm", 0.0))
        assert seen[0] == 0.0
        assert all(a <= b for a, b in zip(seen, seen[1:])), seen
        assert seen[-1] > 0.0

    def test_eig_share_bytes_shrink_as_f_shrinks(self):
        seen = []
        for f in (1.0, 0.5, 0.25):
            _, world = run_hybrid(4, grad_worker_frac=f, return_world=True)
            seen.append(world.stats.bytes_by_phase.get("eig_comm", 0.0))
        assert all(a >= b for a, b in zip(seen, seen[1:])), seen

    def test_factor_comm_unchanged_by_fraction(self):
        """The factor allreduce is placement-independent (stage 0)."""
        refs = []
        for f in (1.0, 0.5, 0.25):
            _, world = run_hybrid(4, grad_worker_frac=f, return_world=True)
            refs.append(world.stats.bytes_by_phase["factor_comm"])
        assert refs[0] == refs[1] == refs[2]


class TestDrivers:
    @pytest.mark.parametrize("world_size,frac", [(4, 0.5), (3, 2 / 3)])
    def test_spmd_matches_phase(self, world_size, frac):
        phase = run_hybrid(world_size, grad_worker_frac=frac, driver="phase")
        spmd = run_hybrid(world_size, grad_worker_frac=frac, driver="spmd")
        for key in phase:
            assert np.array_equal(spmd[key], phase[key]), key

    @pytest.mark.parametrize("world_size,frac", [(4, 0.5), (4, 1.0), (2, 0.5)])
    def test_pipelined_matches_sync(self, world_size, frac):
        sync = run_hybrid(world_size, grad_worker_frac=frac)
        pipe = run_hybrid(
            world_size, grad_worker_frac=frac, scheduler="graph", bucket_bytes=4096
        )
        for key in sync:
            np.testing.assert_allclose(
                pipe[key], sync[key], atol=1e-6, rtol=1e-6, err_msg=key
            )

    def test_pipelined_spmd_matches_pipelined_phase(self):
        phase = run_hybrid(4, grad_worker_frac=0.5, scheduler="graph", bucket_bytes=4096)
        spmd = run_hybrid(
            4, grad_worker_frac=0.5, scheduler="graph", bucket_bytes=4096, driver="spmd"
        )
        for key in phase:
            np.testing.assert_allclose(
                spmd[key], phase[key], atol=1e-6, rtol=1e-6, err_msg=key
            )

    def test_single_worker_step_is_local(self):
        model = build_tiny_cnn(seed=3)
        kfac = KFAC(model, rank=0, world_size=1, grad_worker_frac=1.0, damping=0.01)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=4).astype(np.int64)
        loss_fn = CrossEntropyLoss()
        model.zero_grad()
        loss_fn(model(x), y)
        model.backward(loss_fn.backward())
        kfac.step()  # must not yield any comm request
        assert kfac.steps == 1
