"""Property-based tests for the block-diagonal approximation tier.

Three promises of :mod:`repro.approx`, driven by Hypothesis over shapes a
hand-written suite would miss (d = 1, primes, k > d, ragged splits):

1. **Partition coverage** — ``plan_block_bounds`` covers every index of
   every factor exactly once, in order, for arbitrary ``(dims, k)``;
2. **Preconditioning equivalence** — ``precondition_block_eigen`` with a
   blocked basis equals ``precondition_eigen`` applied to the assembled
   dense block-diagonal basis, and with one block it is *bit-identical*
   to the exact path;
3. **Wire losslessness** — ``tri_pack_blocks``/``tri_unpack_blocks``
   round-trip the diagonal-block region exactly in fp32, fp64, and the
   fp16 wire codec's quantized values.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.blockeig import (
    BlockFactorEig,
    block_eigendecompose,
    precondition_block_eigen,
)
from repro.approx.blocks import (
    block_boundaries,
    block_eig_elements,
    plan_block_bounds,
    widest_first_block_dim,
)
from repro.comm.compression import get_codec
from repro.comm.fusion import block_tri_len, tri_pack_blocks, tri_unpack_blocks
from repro.core.inverse import FactorEig, eigendecompose, precondition_eigen


def _spd(d: int, seed: int, dtype=np.float64) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(d, d + 2)).astype(dtype)
    return x @ x.T / (d + 2) + np.eye(d, dtype=dtype)


# ---------------------------------------------------------------------------
# 1. partition coverage
# ---------------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(d=st.integers(1, 97), k=st.integers(1, 120))
def test_block_boundaries_cover_exactly_once(d, k):
    bounds = block_boundaries(d, k)
    # contiguous, ordered, non-empty blocks tiling [0, d)
    assert bounds[0][0] == 0 and bounds[-1][1] == d
    for (lo, hi), (lo2, hi2) in zip(bounds, bounds[1:]):
        assert hi == lo2
    assert all(hi > lo for lo, hi in bounds)
    # k > d clamps to one block per index, never an empty block
    assert len(bounds) == min(max(1, k), d)
    # near-equal split: widths differ by at most one, larger blocks first
    widths = [hi - lo for lo, hi in bounds]
    assert max(widths) - min(widths) <= 1
    assert widths == sorted(widths, reverse=True)


@settings(max_examples=60, deadline=None)
@given(
    dims=st.lists(st.integers(1, 64), min_size=1, max_size=8),
    k=st.integers(1, 16),
)
def test_plan_block_bounds_partitions_every_factor(dims, k):
    plans = plan_block_bounds(tuple(dims), k)
    assert len(plans) == len(dims)
    block_dim = widest_first_block_dim(tuple(dims), k)
    for d, bounds in zip(dims, plans):
        covered = [i for lo, hi in bounds for i in range(lo, hi)]
        assert covered == list(range(d))  # every index exactly once, ordered
        if k == 1:
            assert bounds == ((0, d),)
        else:
            # widest-first policy: a factor narrower than the block edge
            # stays exact; wider factors split into ceil(d / block_dim)
            assert len(bounds) == max(1, -(-d // block_dim))
        assert block_eig_elements(bounds) == sum(
            (hi - lo) ** 2 + (hi - lo) for lo, hi in bounds
        )


# ---------------------------------------------------------------------------
# 2. preconditioning equivalence
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    g_dim=st.integers(1, 24),
    a_dim=st.integers(1, 24),
    k=st.integers(2, 6),
    seed=st.integers(0, 2**16),
)
def test_block_precondition_equals_dense_blockdiag_basis(g_dim, a_dim, k, seed):
    rng = np.random.default_rng(seed)
    grad = rng.normal(size=(g_dim, a_dim))
    eig_A = block_eigendecompose(_spd(a_dim, seed), block_boundaries(a_dim, k))
    eig_G = block_eigendecompose(_spd(g_dim, seed + 1), block_boundaries(g_dim, k))
    blocked = precondition_block_eigen(grad, eig_A, eig_G, gamma=0.01)
    # the dense reference: same math through the assembled block-diagonal
    # Q's and concatenated spectra via the exact-path kernel
    dense = precondition_eigen(
        grad,
        FactorEig(Q=eig_A.Q, lam=eig_A.lam),
        FactorEig(Q=eig_G.Q, lam=eig_G.lam),
        gamma=0.01,
    )
    np.testing.assert_allclose(blocked, dense, rtol=1e-10, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    g_dim=st.integers(1, 24),
    a_dim=st.integers(1, 24),
    seed=st.integers(0, 2**16),
)
def test_single_block_precondition_bit_identical_to_exact(g_dim, a_dim, seed):
    rng = np.random.default_rng(seed)
    grad = rng.normal(size=(g_dim, a_dim))
    A, G = _spd(a_dim, seed), _spd(g_dim, seed + 1)
    exact = precondition_eigen(grad, eigendecompose(A), eigendecompose(G), gamma=0.01)
    one_a = block_eigendecompose(A, ((0, a_dim),))
    one_g = block_eigendecompose(G, ((0, g_dim),))
    # plain FactorEig inputs delegate wholesale too
    via_plain = precondition_block_eigen(
        grad, eigendecompose(A), eigendecompose(G), gamma=0.01
    )
    np.testing.assert_array_equal(via_plain, exact)
    # single-block BlockFactorEig: same eigh on the same memory layout
    via_block = precondition_block_eigen(grad, one_a, one_g, gamma=0.01)
    np.testing.assert_array_equal(via_block, exact)


def test_block_factor_eig_validates_bounds():
    eig = eigendecompose(np.eye(3))
    try:
        BlockFactorEig(blocks=(eig,), bounds=((0, 2),))
    except ValueError as e:
        assert "bound width" in str(e)
    else:  # pragma: no cover
        raise AssertionError("mismatched bounds must be rejected")


# ---------------------------------------------------------------------------
# 3. tri-packed block wire losslessness
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    d=st.integers(1, 41),
    k=st.integers(1, 8),
    dtype=st.sampled_from(("float32", "float64", "fp16-wire")),
    seed=st.integers(0, 2**16),
)
def test_tri_pack_blocks_roundtrip_lossless(d, k, dtype, seed):
    rng = np.random.default_rng(seed)
    m = rng.normal(scale=3.0, size=(d, d))
    sym = np.triu(m) + np.triu(m, 1).T
    if dtype == "fp16-wire":
        # values already representable in the fp16 wire codec: quantize
        # first, then the packed round trip must preserve them exactly
        sym = get_codec("fp16").quantize(sym.astype(np.float32)).astype(np.float32)
        sym = np.triu(sym) + np.triu(sym, 1).T
    else:
        sym = sym.astype(dtype)
    bounds = block_boundaries(d, k)
    flat = tri_pack_blocks(sym, bounds)
    assert flat.shape == (block_tri_len(bounds),)
    assert flat.dtype == sym.dtype

    back = tri_unpack_blocks(flat, bounds)
    assert back.dtype == sym.dtype
    for lo, hi in bounds:
        np.testing.assert_array_equal(back[lo:hi, lo:hi], sym[lo:hi, lo:hi])
    # off-block region is zeroed, not garbage
    mask = np.zeros((d, d), dtype=bool)
    for lo, hi in bounds:
        mask[lo:hi, lo:hi] = True
    assert np.all(back[~mask] == 0)

    # in-place variant writes only the diagonal-block region
    out = np.full((d, d), np.pi, dtype=sym.dtype)
    tri_unpack_blocks(flat, bounds, out=out)
    for lo, hi in bounds:
        np.testing.assert_array_equal(out[lo:hi, lo:hi], sym[lo:hi, lo:hi])
    assert np.all(out[~mask] == np.asarray(np.pi, dtype=sym.dtype))
