"""Utility modules: RNG pools, timers, tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RngPool, seed_everything, spawn_rng
from repro.utils.tables import format_series, format_table
from repro.utils.timer import Stopwatch, Timer, TimerRegistry


class TestRng:
    def test_seed_everything_reproducible(self):
        a = seed_everything(5).normal(size=4)
        b = seed_everything(5).normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            seed_everything(-1)

    def test_spawn_rng_independent_streams(self):
        gens = spawn_rng(7, 3)
        draws = [g.normal(size=8) for g in gens]
        assert not np.allclose(draws[0], draws[1])
        again = spawn_rng(7, 3)
        np.testing.assert_array_equal(draws[2], again[2].normal(size=8))

    def test_pool_stream_isolation(self):
        """Consuming one stream must not perturb another."""
        p1 = RngPool(3)
        _ = p1.get("data").normal(size=100)
        init1 = p1.get("init").normal(size=4)
        p2 = RngPool(3)
        init2 = p2.get("init").normal(size=4)
        np.testing.assert_array_equal(init1, init2)

    def test_pool_per_worker(self):
        p = RngPool(3)
        gens = p.per_worker("shuffle", 4)
        assert len(gens) == 4
        draws = {tuple(g.normal(size=2)) for g in gens}
        assert len(draws) == 4

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            RngPool(0).per_worker("x", 0)


class TestTimers:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        with sw:
            pass
        assert sw.count == 2 and sw.total >= 0
        sw.reset()
        assert sw.count == 0

    def test_timer_charge(self):
        t = Timer("x")
        t.charge(1.5)
        t.charge(0.5)
        assert t.total == 2.0 and t.mean == 1.0

    def test_timer_rejects_negative(self):
        with pytest.raises(ValueError):
            Timer("x").charge(-1)

    def test_registry(self):
        reg = TimerRegistry()
        reg.charge("a", 1.0)
        reg.charge("b", 2.0)
        reg.charge("a", 1.0)
        assert reg.total("a") == 2.0
        assert reg.grand_total() == 4.0
        assert reg.as_dict() == {"a": 2.0, "b": 2.0}

    def test_registry_merge(self):
        a, b = TimerRegistry(), TimerRegistry()
        a.charge("x", 1.0)
        b.charge("x", 2.0)
        b.charge("y", 3.0)
        merged = a.merged_with(b)
        assert merged.total("x") == 3.0 and merged.total("y") == 3.0


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular
        assert "30" in out and "2.5" in out

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("s", [1, 2], [0.5, 0.6], "epoch", "acc")
        assert "epoch -> acc" in out and "0.6" in out

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])
