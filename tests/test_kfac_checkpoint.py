"""K-FAC checkpoint/restore: resuming must be bit-equivalent to not stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preconditioner import KFAC
from repro.nn.loss import CrossEntropyLoss
from tests.conftest import build_tiny_cnn


def one_step(model, kfac, x, y, loss_fn):
    model.zero_grad()
    loss_fn(model(x), y)
    model.backward(loss_fn.backward())
    kfac.step()
    # grads now preconditioned; apply a plain step so weights evolve
    for p in model.parameters():
        p.data -= 0.1 * p.grad


class TestCheckpoint:
    def _data(self):
        rng = np.random.default_rng(0)
        return (
            rng.normal(size=(8, 1, 8, 8)).astype(np.float32),
            rng.integers(0, 3, size=8).astype(np.int64),
        )

    def test_resume_is_equivalent_to_continuous(self):
        x, y = self._data()
        loss = CrossEntropyLoss()

        # continuous run: 4 steps
        m1 = build_tiny_cnn(seed=5)
        k1 = KFAC(m1, damping=0.01, fac_update_freq=1, kfac_update_freq=2)
        for _ in range(4):
            one_step(m1, k1, x, y, loss)

        # checkpointed run: 2 steps, snapshot, restore into fresh objects
        m2 = build_tiny_cnn(seed=5)
        k2 = KFAC(m2, damping=0.01, fac_update_freq=1, kfac_update_freq=2)
        for _ in range(2):
            one_step(m2, k2, x, y, loss)
        model_state = m2.state_dict()
        kfac_state = k2.state_dict()

        m3 = build_tiny_cnn(seed=99)  # different init, fully overwritten
        m3.load_state_dict(model_state)
        k3 = KFAC(m3, damping=0.01, fac_update_freq=1, kfac_update_freq=2)
        k3.load_state_dict(kfac_state)
        for _ in range(2):
            one_step(m3, k3, x, y, loss)

        for (n1, p1), (_, p3) in zip(m1.named_parameters(), m3.named_parameters()):
            np.testing.assert_allclose(p3.data, p1.data, rtol=1e-6, atol=1e-7, err_msg=n1)

    def test_counters_restored(self):
        x, y = self._data()
        loss = CrossEntropyLoss()
        model = build_tiny_cnn(seed=1)
        kfac = KFAC(model, damping=0.02, kfac_update_freq=3)
        for _ in range(2):
            one_step(model, kfac, x, y, loss)
        kfac.damping = 0.005  # as a scheduler would
        state = kfac.state_dict()

        fresh = KFAC(build_tiny_cnn(seed=1), damping=0.02, kfac_update_freq=3)
        fresh.load_state_dict(state)
        assert fresh.steps == 2
        assert fresh.damping == pytest.approx(0.005)
        assert fresh.kfac_update_freq == 3

    def test_second_order_state_restored(self):
        x, y = self._data()
        loss = CrossEntropyLoss()
        model = build_tiny_cnn(seed=1)
        kfac = KFAC(model, damping=0.01)
        one_step(model, kfac, x, y, loss)
        state = kfac.state_dict()
        fresh = KFAC(build_tiny_cnn(seed=1), damping=0.01)
        fresh.load_state_dict(state)
        for a, b in zip(kfac.layers, fresh.layers):
            np.testing.assert_array_equal(a.A, b.A)
            np.testing.assert_array_equal(a.eig_A.Q, b.eig_A.Q)
            np.testing.assert_array_equal(a.eig_G.lam, b.eig_G.lam)

    def test_unknown_layer_rejected(self):
        model = build_tiny_cnn(seed=1)
        kfac = KFAC(model, damping=0.01)
        state = kfac.state_dict()
        state["layers"]["bogus.layer"] = {}
        fresh = KFAC(build_tiny_cnn(seed=1), damping=0.01)
        with pytest.raises(KeyError):
            fresh.load_state_dict(state)

    def test_state_dict_is_deep_copy(self):
        x, y = self._data()
        model = build_tiny_cnn(seed=1)
        kfac = KFAC(model, damping=0.01)
        one_step(model, kfac, x, y, CrossEntropyLoss())
        state = kfac.state_dict()
        first_layer = kfac.layers[0]
        state["layers"][first_layer.name]["A"][...] = 0.0
        assert not np.all(first_layer.A == 0.0)
