"""Optimizers and LR schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import (
    LARS,
    SGD,
    Adam,
    ConstantSchedule,
    LinearWarmupSchedule,
    MultiStepSchedule,
    PolynomialSchedule,
)


def make_param(values) -> Parameter:
    p = Parameter(np.array(values, dtype=np.float64))
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = make_param([1.0, 2.0])
        p.grad[...] = [0.5, -0.5]
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad[...] = [1.0]
        opt.step()  # buf = 1 -> p = -1
        p.grad[...] = [1.0]
        opt.step()  # buf = 1.9 -> p = -2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        p.grad[...] = [0.0]
        opt.step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.1])

    def test_nesterov_differs_from_plain(self):
        def run(nesterov):
            p = make_param([0.0])
            opt = SGD([p], lr=0.5, momentum=0.9, nesterov=nesterov)
            for _ in range(3):
                p.grad[...] = [1.0]
                opt.step()
            return p.data.copy()

        assert run(True)[0] != run(False)[0]

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param([0.0])], lr=0.1, nesterov=True)

    def test_state_dict_roundtrip(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad[...] = [1.0]
        opt.step()
        state = opt.state_dict()
        p2 = make_param([1.0])
        opt2 = SGD([p2], lr=0.5, momentum=0.9)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1
        p.grad[...] = [1.0]
        p2.grad[...] = [1.0]
        opt.step()
        opt2.step()
        # same momentum buffer -> same delta applied
        np.testing.assert_allclose(p2.data - 1.0, p.data - (1.0 - 0.1))

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_matches_closed_form_quadratic(self):
        """SGD on f(w) = 0.5*w^2 contracts by (1 - lr) per step."""
        p = make_param([4.0])
        opt = SGD([p], lr=0.3)
        for _ in range(5):
            p.grad[...] = p.data
            opt.step()
        np.testing.assert_allclose(p.data, [4.0 * 0.7**5], rtol=1e-12)


class TestAdam:
    def test_first_step_size_is_lr(self):
        p = make_param([0.0])
        opt = Adam([p], lr=0.1)
        p.grad[...] = [3.0]
        opt.step()
        # bias-corrected first step ~ -lr * sign(grad)
        np.testing.assert_allclose(p.data, [-0.1], rtol=1e-6)

    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            p.grad[...] = p.data
            opt.step()
        assert abs(p.data[0]) < 0.05

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([make_param([0.0])], betas=(1.0, 0.9))

    def test_state_roundtrip(self):
        p = make_param([1.0])
        opt = Adam([p], lr=0.1)
        p.grad[...] = [1.0]
        opt.step()
        state = opt.state_dict()
        opt2 = Adam([make_param([1.0])], lr=0.1)
        opt2.load_state_dict(state)
        assert opt2._t == 1


class TestLARS:
    def test_step_direction(self):
        p = make_param([3.0, 4.0])  # norm 5
        opt = LARS([p], lr=1.0, momentum=0.0, trust_coefficient=0.01)
        p.grad[...] = [0.0, 1.0]  # norm 1
        opt.step()
        # local lr = 0.01 * 5 / 1 -> step = -0.05 on second coord
        np.testing.assert_allclose(p.data, [3.0, 4.0 - 0.05], rtol=1e-6)

    def test_zero_norm_falls_back(self):
        p = make_param([0.0])
        opt = LARS([p], lr=0.1, momentum=0.0)
        p.grad[...] = [1.0]
        opt.step()
        np.testing.assert_allclose(p.data, [-0.1])


def _quadratic_steps(opt_cls, params, state=None, n=5, seed=0, **kwargs):
    """Run ``n`` steps of ``opt`` on a fixed gradient stream; return opt."""
    opt = opt_cls(params, **kwargs)
    if state is not None:
        opt.load_state_dict(state)
    rng = np.random.default_rng(seed)
    for _ in range(n):
        for p in params:
            p.grad[...] = rng.normal(size=p.data.shape)
        opt.step()
    return opt


class TestOptimizerCheckpointBitEquivalence:
    """state_dict round trips resume bit-identically (mirrors the KFAC
    checkpoint test): train, snapshot, train on; restore into a fresh
    optimizer and replay — parameters and internal buffers must match
    exactly, momentum/moment state included."""

    @pytest.mark.parametrize(
        "opt_cls,kwargs",
        [
            (SGD, dict(lr=0.05, momentum=0.9, weight_decay=1e-4)),
            (LARS, dict(lr=0.05, momentum=0.9, weight_decay=1e-4)),
            (Adam, dict(lr=1e-3, weight_decay=1e-4)),
        ],
    )
    def test_resume_bit_identical(self, opt_cls, kwargs):
        rng = np.random.default_rng(7)
        init = [rng.normal(size=(4, 3)), rng.normal(size=(6,))]
        params_a = [Parameter(v.copy()) for v in init]
        opt_a = _quadratic_steps(opt_cls, params_a, n=4, seed=1, **kwargs)
        snapshot = opt_a.state_dict()
        data_at_snapshot = [p.data.copy() for p in params_a]
        # continue the original run
        rng2 = np.random.default_rng(2)
        for _ in range(3):
            for p in params_a:
                p.grad[...] = rng2.normal(size=p.data.shape)
            opt_a.step()

        # restore into a fresh optimizer over params reset to the snapshot
        params_b = [Parameter(v.copy()) for v in data_at_snapshot]
        opt_b = opt_cls(params_b, **kwargs)
        opt_b.load_state_dict(snapshot)
        rng3 = np.random.default_rng(2)
        for _ in range(3):
            for p in params_b:
                p.grad[...] = rng3.normal(size=p.data.shape)
            opt_b.step()

        for pa, pb in zip(params_a, params_b):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_lars_state_dict_contains_momentum_buffers(self):
        p = make_param([1.0, -2.0])
        opt = _quadratic_steps(LARS, [p], n=2, lr=0.1, momentum=0.9)
        state = opt.state_dict()
        assert len(state["buffers"]) == 1
        assert state["buffers"][0].shape == (2,)
        assert np.any(state["buffers"][0] != 0.0)
        # snapshot is a copy, not a view of live state
        state["buffers"][0][...] = 123.0
        assert not np.any(opt._buffers[0] == 123.0)

    def test_adam_state_dict_contains_moments(self):
        p = make_param([1.0, -2.0])
        opt = _quadratic_steps(Adam, [p], n=2, lr=1e-3)
        state = opt.state_dict()
        assert state["t"] == 2
        assert np.any(state["m"][0] != 0.0) and np.any(state["v"][0] != 0.0)


class TestSchedules:
    def test_constant(self):
        assert ConstantSchedule(0.1)(5.0) == 0.1

    def test_multistep(self):
        s = MultiStepSchedule(1.0, [10, 20], gamma=0.1)
        assert s(0) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(25) == pytest.approx(0.01)

    def test_multistep_requires_sorted(self):
        with pytest.raises(ValueError):
            MultiStepSchedule(1.0, [20, 10])

    def test_warmup_ramps_linearly(self):
        s = LinearWarmupSchedule(ConstantSchedule(1.0), warmup_epochs=5, start_factor=0.0)
        assert s(0.0) == 0.0
        assert s(2.5) == pytest.approx(0.5)
        assert s(5.0) == 1.0
        assert s(9.0) == 1.0

    def test_warmup_five_epoch_paper_recipe(self):
        """lr = N*0.0125 with 5-epoch warmup (paper §VI-C1, N=16)."""
        base = 16 * 0.0125
        s = LinearWarmupSchedule(
            MultiStepSchedule(base, [25, 35, 40, 45, 50]), warmup_epochs=5, start_factor=0.1
        )
        assert s(0.0) == pytest.approx(0.1 * base)
        assert s(5.0) == pytest.approx(base)
        assert s(26.0) == pytest.approx(0.1 * base)

    def test_polynomial_endpoints(self):
        s = PolynomialSchedule(1.0, total_epochs=10, power=2.0, end_lr=0.0)
        assert s(0) == 1.0
        assert s(10) == 0.0
        assert s(5) == pytest.approx(0.25)

    def test_polynomial_clamps_beyond_total(self):
        s = PolynomialSchedule(1.0, total_epochs=10)
        assert s(15) == 0.0
