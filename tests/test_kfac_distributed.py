"""Distributed K-FAC equivalence — the central correctness claims.

Algorithm 1's distribution must be *semantics-preserving*:

1. P workers on sharded data == 1 worker on the full batch;
2. K-FAC-lw and K-FAC-opt produce identical updates (they differ only in
   placement and communication);
3. the greedy (LPT) assignment extension changes nothing numerically;
4. the threaded SPMD driver equals the deterministic phase driver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.backend import World
from repro.comm.horovod import HorovodContext
from repro.core.distributed import PhaseController, SPMDDriver
from repro.core.preconditioner import COMM_OPT, LAYER_WISE, KFAC
from repro.nn.loss import CrossEntropyLoss
from repro.optim.sgd import SGD
from tests.conftest import build_tiny_cnn


def run_distributed(
    world_size: int,
    steps: int = 4,
    strategy: str = COMM_OPT,
    assignment: str = "round_robin",
    use_eigen: bool = True,
    seed: int = 42,
    driver: str = "phase",
) -> dict[str, np.ndarray]:
    """Train a tiny CNN data-parallel with K-FAC; return final weights."""
    rng = np.random.default_rng(99)
    n_total = 16
    x = rng.normal(size=(n_total, 1, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, size=n_total).astype(np.int64)
    shard = n_total // world_size

    kfac_kw = dict(
        damping=0.01,
        kfac_update_freq=2,
        fac_update_freq=1,
        strategy=strategy,
        assignment=assignment,
        use_eigen_decomp=use_eigen,
        lr=0.1,
    )

    if driver == "spmd":
        world = World(world_size)

        def program(view):
            model = build_tiny_cnn(seed=seed)
            kfac = KFAC(model, rank=view.rank, world_size=world_size, **kfac_kw)
            drv = SPMDDriver(kfac, HorovodContext(view))
            opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
            loss_fn = CrossEntropyLoss()
            xs = x[view.rank * shard : (view.rank + 1) * shard]
            ys = y[view.rank * shard : (view.rank + 1) * shard]
            for _ in range(steps):
                opt.zero_grad()
                out = model(xs)
                loss_fn(out, ys)
                model.backward(loss_fn.backward())
                for name, p in model.named_parameters():
                    p.grad[...] = view.allreduce(p.grad, name=f"g:{name}", op="average")
                drv.step()
                opt.step()
            return model.state_dict()

        states = world.run_spmd(program, timeout=60)
        return states[0]

    world = World(world_size)
    models = [build_tiny_cnn(seed=seed) for _ in range(world_size)]
    kfacs = [
        KFAC(m, rank=r, world_size=world_size, **kfac_kw)
        for r, m in enumerate(models)
    ]
    controller = PhaseController(kfacs, world)
    opts = [SGD(m.parameters(), lr=0.1, momentum=0.9) for m in models]
    losses = [CrossEntropyLoss() for _ in range(world_size)]
    for _ in range(steps):
        for r in range(world_size):
            opts[r].zero_grad()
            xs = x[r * shard : (r + 1) * shard]
            ys = y[r * shard : (r + 1) * shard]
            out = models[r](xs)
            losses[r](out, ys)
            models[r].backward(losses[r].backward())
        params = [list(m.parameters()) for m in models]
        for j in range(len(params[0])):
            reduced = world.allreduce([params[r][j].grad for r in range(world_size)])
            for r in range(world_size):
                params[r][j].grad[...] = reduced[r]
        controller.step()
        for opt in opts:
            opt.step()
    return models[0].state_dict()


class TestDistributedEquivalence:
    @pytest.mark.parametrize("world_size", [2, 4])
    def test_matches_single_worker(self, world_size):
        ref = run_distributed(1)
        dist = run_distributed(world_size)
        for key in ref:
            np.testing.assert_allclose(
                dist[key], ref[key], rtol=2e-4, atol=2e-5,
                err_msg=f"divergence in {key} at P={world_size}",
            )

    def test_layer_wise_equals_comm_opt(self):
        opt_state = run_distributed(2, strategy=COMM_OPT)
        lw_state = run_distributed(2, strategy=LAYER_WISE)
        for key in opt_state:
            np.testing.assert_allclose(lw_state[key], opt_state[key], rtol=1e-5, atol=1e-7)

    def test_greedy_assignment_is_numerically_identical(self):
        rr = run_distributed(3, assignment="round_robin")
        greedy = run_distributed(3, assignment="greedy")
        for key in rr:
            np.testing.assert_allclose(greedy[key], rr[key], rtol=1e-5, atol=1e-7)

    def test_inverse_mode_distributed_equivalence(self):
        ref = run_distributed(1, use_eigen=False)
        dist = run_distributed(2, use_eigen=False)
        for key in ref:
            np.testing.assert_allclose(dist[key], ref[key], rtol=2e-4, atol=2e-5)

    def test_spmd_driver_matches_phase_driver(self):
        phase = run_distributed(2, driver="phase")
        spmd = run_distributed(2, driver="spmd")
        for key in phase:
            np.testing.assert_allclose(spmd[key], phase[key], rtol=1e-5, atol=1e-7)

    def test_all_replicas_stay_identical(self):
        """After every step, replica weights must agree bit-for-bit-ish."""
        world = World(3)
        models = [build_tiny_cnn(seed=7) for _ in range(3)]
        kfacs = [KFAC(m, rank=r, world_size=3, damping=0.01) for r, m in enumerate(models)]
        controller = PhaseController(kfacs, world)
        opts = [SGD(m.parameters(), lr=0.1) for m in models]
        losses = [CrossEntropyLoss() for _ in range(3)]
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=12).astype(np.int64)
        for step in range(3):
            for r in range(3):
                opts[r].zero_grad()
                out = models[r](x[r * 4 : (r + 1) * 4])
                losses[r](out, y[r * 4 : (r + 1) * 4])
                models[r].backward(losses[r].backward())
            params = [list(m.parameters()) for m in models]
            for j in range(len(params[0])):
                reduced = world.allreduce([params[r][j].grad for r in range(3)])
                for r in range(3):
                    params[r][j].grad[...] = reduced[r]
            controller.step()
            for opt in opts:
                opt.step()
            s0 = models[0].state_dict()
            for r in (1, 2):
                sr = models[r].state_dict()
                for key in s0:
                    if key.startswith("buffer:"):
                        continue  # BN running stats are legitimately local
                    np.testing.assert_allclose(
                        sr[key], s0[key], rtol=1e-6, atol=1e-8,
                        err_msg=f"replica {r} diverged at step {step}: {key}",
                    )

    def test_comm_happens_only_on_update_steps(self):
        """K-FAC-opt: no factor/eig communication on non-update iterations
        (the paper's central communication-avoidance claim, §IV-C)."""
        world = World(2)
        models = [build_tiny_cnn(seed=7) for _ in range(2)]
        kfacs = [
            KFAC(m, rank=r, world_size=2, damping=0.01,
                 fac_update_freq=2, kfac_update_freq=4)
            for r, m in enumerate(models)
        ]
        controller = PhaseController(kfacs, world)
        losses = [CrossEntropyLoss() for _ in range(2)]
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=8).astype(np.int64)
        op_counts = []
        for _ in range(4):
            for r in range(2):
                models[r].zero_grad()
                out = models[r](x[r * 4 : (r + 1) * 4])
                losses[r](out, y[r * 4 : (r + 1) * 4])
                models[r].backward(losses[r].backward())
            before = world.stats.total_ops()
            controller.step()
            op_counts.append(world.stats.total_ops() - before)
        # step 0: factors + eigs; step 1: nothing; step 2: factors; step 3: nothing
        assert op_counts[0] == 2
        assert op_counts[1] == 0
        assert op_counts[2] == 1
        assert op_counts[3] == 0

    def test_layer_wise_communicates_every_step(self):
        """K-FAC-lw gathers preconditioned gradients every iteration."""
        world = World(2)
        models = [build_tiny_cnn(seed=7) for _ in range(2)]
        kfacs = [
            KFAC(m, rank=r, world_size=2, damping=0.01, strategy=LAYER_WISE,
                 fac_update_freq=2, kfac_update_freq=4)
            for r, m in enumerate(models)
        ]
        controller = PhaseController(kfacs, world)
        losses = [CrossEntropyLoss() for _ in range(2)]
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=8).astype(np.int64)
        for step in range(2):
            for r in range(2):
                models[r].zero_grad()
                out = models[r](x[r * 4 : (r + 1) * 4])
                losses[r](out, y[r * 4 : (r + 1) * 4])
                models[r].backward(losses[r].backward())
            before = world.stats.ops_by_phase.get("precond_comm", 0)
            controller.step()
            after = world.stats.ops_by_phase["precond_comm"]
            assert after == before + 1, f"no precond gather at step {step}"


class TestControllerValidation:
    def test_rank_mismatch_rejected(self):
        world = World(2)
        models = [build_tiny_cnn(seed=1) for _ in range(2)]
        kfacs = [KFAC(m, rank=0, world_size=2) for m in models]  # both rank 0
        with pytest.raises(ValueError):
            PhaseController(kfacs, world)

    def test_count_mismatch_rejected(self):
        world = World(3)
        models = [build_tiny_cnn(seed=1) for _ in range(2)]
        kfacs = [KFAC(m, rank=r, world_size=2) for r, m in enumerate(models)]
        with pytest.raises(ValueError):
            PhaseController(kfacs, world)
