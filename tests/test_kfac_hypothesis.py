"""Property-based tests on the K-FAC pipeline over generated layer configs.

These complement the fixed-case tests: hypothesis explores conv geometries,
batch sizes, and damping values, checking the end-to-end invariants that
must hold for *any* supported layer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factors import conv2d_factor_A, conv2d_factor_G, linear_factor_A
from repro.core.inverse import (
    dense_damped_inverse_apply,
    eigendecompose,
    precondition_eigen,
)
from repro.core.layers import make_kfac_layer
from repro.nn.layers import Conv2d, Linear
from repro.nn.container import Sequential
from repro.core.preconditioner import KFAC
from repro.nn.loss import CrossEntropyLoss


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 6),
    c_in=st.integers(1, 3),
    size=st.integers(3, 8),
    k=st.integers(1, 3),
    stride=st.integers(1, 2),
    bias=st.booleans(),
    seed=st.integers(0, 10_000),
)
def test_conv_factor_A_always_psd_and_symmetric(n, c_in, size, k, stride, bias, seed):
    if size < k:
        return
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, c_in, size, size)).astype(np.float32)
    A = conv2d_factor_A(x, (k, k), (stride, stride), (0, 0), bias)
    dim = c_in * k * k + (1 if bias else 0)
    assert A.shape == (dim, dim)
    np.testing.assert_allclose(A, A.T, rtol=1e-4, atol=1e-6)
    assert np.linalg.eigvalsh(A.astype(np.float64)).min() > -1e-5


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 6),
    c_out=st.integers(1, 5),
    spatial=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_conv_factor_G_always_psd(n, c_out, spatial, seed):
    rng = np.random.default_rng(seed)
    g = rng.normal(size=(n, c_out, spatial, spatial)).astype(np.float32)
    G = conv2d_factor_G(g)
    assert G.shape == (c_out, c_out)
    assert np.linalg.eigvalsh(G.astype(np.float64)).min() > -1e-4


@settings(max_examples=15, deadline=None)
@given(
    shards=st.integers(2, 4),
    d=st.integers(2, 6),
    per_shard=st.integers(2, 8),
    seed=st.integers(0, 10_000),
)
def test_factor_sharding_linearity(shards, d, per_shard, seed):
    """mean of per-shard A == A of concatenated batch, any shard count."""
    rng = np.random.default_rng(seed)
    parts = [rng.normal(size=(per_shard, d)) for _ in range(shards)]
    full = np.concatenate(parts)
    mean_A = np.mean([linear_factor_A(p, True) for p in parts], axis=0)
    np.testing.assert_allclose(mean_A, linear_factor_A(full, True), rtol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    d_out=st.integers(1, 4),
    d_in=st.integers(1, 4),
    gamma=st.floats(1e-5, 10.0),
    scale=st.floats(0.01, 100.0),
    seed=st.integers(0, 10_000),
)
def test_preconditioning_linearity_in_gradient(d_out, d_in, gamma, scale, seed):
    """(F+cI)^{-1} is a linear operator: precond(s*g) == s*precond(g)."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(8, d_in))
    g = rng.normal(size=(8, d_out))
    eig_a = eigendecompose(a.T @ a / 8)
    eig_g = eigendecompose(g.T @ g / 8)
    grad = rng.normal(size=(d_out, d_in))
    one = precondition_eigen(grad, eig_a, eig_g, gamma)
    scaled = precondition_eigen(scale * grad, eig_a, eig_g, gamma)
    np.testing.assert_allclose(scaled, scale * one, rtol=1e-6, atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(
    d=st.integers(2, 4),
    gamma=st.floats(1e-3, 1.0),
    seed=st.integers(0, 10_000),
)
def test_preconditioned_gradient_preserves_descent_direction(d, gamma, seed):
    """<precond(g), g> > 0: the preconditioner is positive definite, so the
    preconditioned gradient is always a descent direction."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(8, d))
    g = rng.normal(size=(8, d))
    eig_a = eigendecompose(a.T @ a / 8)
    eig_g = eigendecompose(g.T @ g / 8)
    grad = rng.normal(size=(d, d))
    pre = precondition_eigen(grad, eig_a, eig_g, gamma)
    assert float((pre * grad).sum()) > 0


@settings(max_examples=8, deadline=None)
@given(
    freq=st.integers(1, 4),
    steps=st.integers(1, 8),
)
def test_update_counter_invariant(freq, steps):
    """n_second_order_updates == ceil(steps / freq) for any combination."""
    rng = np.random.default_rng(0)
    model = Sequential(Linear(6, 4, rng=rng), Linear(4, 3, rng=rng))
    kfac = KFAC(model, fac_update_freq=1, kfac_update_freq=freq, damping=0.01)
    loss = CrossEntropyLoss()
    x = rng.normal(size=(4, 6)).astype(np.float32)
    y = rng.integers(0, 3, size=4)
    for _ in range(steps):
        model.zero_grad()
        loss(model(x), y)
        model.backward(loss.backward())
        kfac.step()
    assert kfac.n_second_order_updates == -(-steps // freq)
    assert kfac.n_factor_updates == steps


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000), gamma=st.floats(1e-3, 1.0))
def test_end_to_end_conv_preconditioning_matches_dense(seed, gamma):
    """Full pipeline on a real Conv2d: hook capture -> factors -> eigen
    preconditioning equals the dense damped-inverse reference."""
    rng = np.random.default_rng(seed)
    conv = Conv2d(2, 3, 2, stride=1, padding=0, bias=True, rng=rng)
    handler = make_kfac_layer("c", conv)
    x = rng.normal(size=(4, 2, 4, 4)).astype(np.float32)
    out = conv(x)
    conv.zero_grad()
    conv.backward(rng.normal(size=out.shape).astype(np.float32) / out.size)
    handler.save_input(x)
    handler.save_grad_output(rng.normal(size=out.shape).astype(np.float32))
    handler.update_factors(0.95)
    handler.eig_A, handler.eig_G = handler.compute_eigen()
    grad = handler.get_grad_matrix()
    fast = handler.precondition(grad, gamma, use_eigen=True)
    dense = dense_damped_inverse_apply(
        grad.astype(np.float64),
        handler.A.astype(np.float64),
        handler.G.astype(np.float64),
        gamma,
    )
    np.testing.assert_allclose(fast, dense, rtol=5e-3, atol=1e-5)
