"""Property-based tests for symmetric factor packing across dtypes.

``tri_pack``/``tri_unpack`` (and the list-level ``pack_symmetric``/
``unpack_symmetric``) promise *losslessness* — for an exactly-symmetric
matrix the packed round trip is bit-identical — and *dtype preservation*
in every precision the stack ships: fp16 working copies, bf16-on-fp32
grids, fp32 and fp64.  Hypothesis drives odd shapes (d = 1, primes,
non-multiples of the mirror tile) that hand-written cases miss.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.fusion import tri_len, tri_pack, tri_unpack
from repro.core.comm_ops import pack_symmetric, unpack_symmetric
from repro.tensor.amp import quantize_bf16

DTYPES = ("float16", "bfloat16-as-fp32", "float32", "float64")


def _symmetric(d: int, dtype: str, seed: int) -> np.ndarray:
    """An exactly-symmetric d x d matrix in the requested precision."""
    rng = np.random.default_rng(seed)
    m = rng.normal(scale=3.0, size=(d, d))
    sym = np.triu(m) + np.triu(m, 1).T  # upper mirrored: exact symmetry
    if dtype == "bfloat16-as-fp32":
        out = quantize_bf16(sym.astype(np.float32))
    else:
        out = sym.astype(dtype)
    # symmetrize again post-cast: rounding is elementwise so mirroring the
    # rounded upper triangle keeps exactness in every dtype
    return np.triu(out) + np.triu(out, 1).T


@settings(max_examples=60, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=37),
    dtype=st.sampled_from(DTYPES),
    seed=st.integers(0, 2**16),
)
def test_tri_roundtrip_lossless_and_dtype_preserving(d, dtype, seed):
    m = _symmetric(d, dtype, seed)
    flat = tri_pack(m)
    assert flat.shape == (tri_len(d),)
    assert flat.dtype == m.dtype
    back = tri_unpack(flat, d)
    assert back.dtype == m.dtype
    np.testing.assert_array_equal(back, m)


@settings(max_examples=40, deadline=None)
@given(
    dims=st.lists(st.integers(min_value=1, max_value=23), min_size=1, max_size=6),
    dtype=st.sampled_from(DTYPES),
    seed=st.integers(0, 2**16),
)
def test_pack_symmetric_list_roundtrip(dims, dtype, seed):
    factors = [_symmetric(d, dtype, seed + i) for i, d in enumerate(dims)]
    flats = pack_symmetric(factors)
    assert [f.shape for f in flats] == [(tri_len(d),) for d in dims]
    back = unpack_symmetric(flats, dims)
    for original, restored in zip(factors, back):
        assert restored.dtype == original.dtype
        np.testing.assert_array_equal(restored, original)


@settings(max_examples=40, deadline=None)
@given(d=st.integers(min_value=2, max_value=29), seed=st.integers(0, 2**16))
def test_tri_pack_reads_only_upper_triangle(d, seed):
    """Asymmetry below the diagonal is silently discarded (documented)."""
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(d, d)).astype(np.float32)  # deliberately asymmetric
    back = tri_unpack(tri_pack(m), d)
    np.testing.assert_array_equal(np.triu(back), np.triu(m))
    np.testing.assert_array_equal(back, back.T)


@settings(max_examples=30, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=19),
    dtype=st.sampled_from(DTYPES),
    seed=st.integers(0, 2**16),
)
def test_averaging_triangles_commutes_with_mirroring(d, dtype, seed):
    """The losslessness argument of the packed allreduce: reducing packed
    triangles then mirroring equals reducing the full matrices."""
    a = _symmetric(d, dtype, seed)
    b = _symmetric(d, dtype, seed + 1)
    via_packed = tri_unpack((tri_pack(a) + tri_pack(b)) / 2.0, d)
    full = ((a + b) / 2.0).astype(a.dtype)
    np.testing.assert_array_equal(via_packed.astype(a.dtype), full)


def test_mismatched_lengths_raise():
    with pytest.raises(ValueError, match="packed factors"):
        unpack_symmetric([np.zeros(3, dtype=np.float32)], [2, 3])
