"""The KFAC preconditioner: hooks, update scheduling, single-worker math."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preconditioner import COMM_OPT, LAYER_WISE, KFAC, KFACHyperParams
from repro.nn.loss import CrossEntropyLoss
from repro.nn.layers import Linear, ReLU
from repro.nn.container import Sequential
from tests.conftest import build_tiny_cnn


def forward_backward(model, x, y, loss_fn=None):
    loss_fn = loss_fn or CrossEntropyLoss()
    model.zero_grad()
    out = model(x)
    val = loss_fn(out, y)
    model.backward(loss_fn.backward())
    return val


class TestConstruction:
    def test_discovers_supported_layers(self, tiny_cnn):
        kfac = KFAC(tiny_cnn)
        kinds = sorted(type(h).__name__ for h in kfac.layers)
        assert kinds.count("Conv2dKFACLayer") == 2
        assert kinds.count("LinearKFACLayer") == 2

    def test_skip_layers(self, tiny_cnn):
        kfac = KFAC(tiny_cnn, skip_layers=("m7",))  # final classifier
        assert all("m7" not in h.name for h in kfac.layers)

    def test_no_supported_layers_raises(self):
        with pytest.raises(ValueError):
            KFAC(Sequential(ReLU()))

    def test_hyperparam_validation(self, tiny_cnn):
        with pytest.raises(ValueError):
            KFAC(tiny_cnn, damping=0.0)
        with pytest.raises(ValueError):
            KFAC(tiny_cnn, strategy="bogus")
        with pytest.raises(ValueError):
            KFACHyperParams(fac_update_freq=0)

    def test_empty_skip_layers_entry_rejected(self, tiny_cnn):
        """'' is a substring of every layer name — accepting it silently
        excludes the whole model and then misreports "no supported layers"."""
        with pytest.raises(ValueError, match="skip_layers"):
            KFACHyperParams(skip_layers=("",))
        with pytest.raises(ValueError, match="skip_layers"):
            KFAC(tiny_cnn, skip_layers=("",))
        with pytest.raises(ValueError, match="skip_layers"):
            KFACHyperParams(skip_layers=("fc", ""))

    def test_non_string_skip_layers_entry_rejected(self):
        with pytest.raises(ValueError, match="skip_layers"):
            KFACHyperParams(skip_layers=(3,))  # type: ignore[arg-type]

    def test_unknown_override_raises_named_typeerror(self, tiny_cnn):
        with pytest.raises(TypeError, match="kfac_update_frequency"):
            KFAC(tiny_cnn, kfac_update_frequency=10)  # typo'd key is named

    def test_valid_overrides_still_accepted(self, tiny_cnn):
        kfac = KFAC(tiny_cnn, kfac_update_freq=7, scheduler="graph")
        assert kfac.hp.kfac_update_freq == 7
        assert kfac.hp.scheduler == "graph"

    def test_async_comm_alias_deprecated(self, tiny_cnn):
        with pytest.warns(DeprecationWarning, match="async_comm"):
            kfac = KFAC(tiny_cnn, async_comm=True)
        assert kfac.hp.scheduler == "graph"
        assert kfac.hp.async_comm is None  # normalized: alias resolved
        with pytest.warns(DeprecationWarning, match="async_comm"):
            kfac = KFAC(tiny_cnn, async_comm=False)
        assert kfac.hp.scheduler == "sync"

    def test_factor_metas_order(self, tiny_cnn):
        kfac = KFAC(tiny_cnn)
        kinds = [m.kind for m in kfac.factor_metas]
        n = len(kfac.layers)
        assert kinds == ["A"] * n + ["G"] * n


class TestCaptureScheduling:
    def test_captures_only_on_factor_steps(self, tiny_cnn, tiny_batch):
        x, y = tiny_batch
        kfac = KFAC(tiny_cnn, fac_update_freq=2, kfac_update_freq=2)
        # step 0: captures
        forward_backward(tiny_cnn, x, y)
        assert all(h.a_input is not None for h in kfac.layers)
        kfac.step()
        # step 1: no capture
        forward_backward(tiny_cnn, x, y)
        assert all(h.a_input is None for h in kfac.layers)
        kfac.step()
        # step 2: captures again
        forward_backward(tiny_cnn, x, y)
        assert all(h.a_input is not None for h in kfac.layers)

    def test_eval_mode_does_not_capture(self, tiny_cnn, tiny_batch):
        x, _ = tiny_batch
        kfac = KFAC(tiny_cnn)
        tiny_cnn.eval()
        tiny_cnn(x)
        assert all(h.a_input is None for h in kfac.layers)

    def test_update_counters(self, tiny_cnn, tiny_batch):
        x, y = tiny_batch
        kfac = KFAC(tiny_cnn, fac_update_freq=1, kfac_update_freq=3)
        for _ in range(6):
            forward_backward(tiny_cnn, x, y)
            kfac.step()
        assert kfac.steps == 6
        assert kfac.n_factor_updates == 6
        assert kfac.n_second_order_updates == 2  # steps 0 and 3

    def test_remove_hooks(self, tiny_cnn, tiny_batch):
        x, y = tiny_batch
        kfac = KFAC(tiny_cnn)
        kfac.remove_hooks()
        forward_backward(tiny_cnn, x, y)
        assert all(h.a_input is None for h in kfac.layers)


class TestPreconditioning:
    def test_grads_are_rewritten(self, tiny_cnn, tiny_batch):
        x, y = tiny_batch
        kfac = KFAC(tiny_cnn, damping=0.01)
        forward_backward(tiny_cnn, x, y)
        raw = {n: p.grad.copy() for n, p in tiny_cnn.named_parameters()}
        kfac.step()
        changed = 0
        for name, p in tiny_cnn.named_parameters():
            if not np.allclose(p.grad, raw[name]):
                changed += 1
        assert changed >= 4  # all kfac-layer weights at least

    def test_bn_like_layers_untouched(self, rng, tiny_batch):
        """Layers K-FAC does not support keep their raw gradients."""
        from repro.nn.layers import BatchNorm2d, Conv2d, Flatten

        model = Sequential(
            Conv2d(1, 4, 3, padding=1, rng=rng),
            BatchNorm2d(4),
            ReLU(),
            Flatten(),
            Linear(4 * 8 * 8, 3, rng=rng),
        )
        x, y = tiny_batch
        kfac = KFAC(model, damping=0.01)
        forward_backward(model, x, y)
        bn = model[1]
        raw_bn = bn.weight.grad.copy()
        kfac.step()
        np.testing.assert_array_equal(bn.weight.grad, raw_bn)

    def test_large_damping_shrinks_toward_scaled_gradient(self, rng):
        """gamma -> large: preconditioned grad ~ grad/gamma (direction kept)."""
        lin = Linear(4, 3, bias=False, rng=rng)
        model = Sequential(lin)
        kfac = KFAC(model, damping=1e7, kl_clip=1e12)  # disable clipping
        x = rng.normal(size=(16, 4)).astype(np.float32)
        out = model(x)
        model.backward(rng.normal(size=out.shape).astype(np.float32) / out.size)
        raw = lin.weight.grad.copy()
        kfac.step()
        np.testing.assert_allclose(lin.weight.grad, raw / 1e7, rtol=1e-3)

    def test_stale_second_order_reused_between_updates(self, tiny_cnn, tiny_batch):
        x, y = tiny_batch
        kfac = KFAC(tiny_cnn, fac_update_freq=1, kfac_update_freq=10)
        forward_backward(tiny_cnn, x, y)
        kfac.step()
        eig_before = kfac.layers[0].eig_A
        forward_backward(tiny_cnn, x, y)
        kfac.step()  # step 1: no second-order update
        assert kfac.layers[0].eig_A is eig_before

    def test_inverse_mode(self, tiny_cnn, tiny_batch):
        x, y = tiny_batch
        kfac = KFAC(tiny_cnn, use_eigen_decomp=False, damping=0.01)
        forward_backward(tiny_cnn, x, y)
        kfac.step()
        assert all(h.inv_A is not None and h.inv_G is not None for h in kfac.layers)
        assert all(h.eig_A is None for h in kfac.layers)

    def test_layer_wise_single_worker(self, tiny_cnn, tiny_batch):
        x, y = tiny_batch
        kfac = KFAC(tiny_cnn, strategy=LAYER_WISE, damping=0.01)
        forward_backward(tiny_cnn, x, y)
        raw = {n: p.grad.copy() for n, p in tiny_cnn.named_parameters()}
        kfac.step()
        assert any(
            not np.allclose(p.grad, raw[n]) for n, p in tiny_cnn.named_parameters()
        )

    def test_step_rejects_multiworker(self, tiny_cnn):
        kfac = KFAC(tiny_cnn, rank=0, world_size=2)
        with pytest.raises(RuntimeError):
            kfac.step()


class TestTrainingEffect:
    def test_loss_decreases_faster_than_gd_on_illconditioned_quadratic(self, rng):
        """On an ill-conditioned linear regression, K-FAC-preconditioned
        steps beat plain GD at equal step count and learning rate."""
        from repro.nn.loss import MSELoss
        from repro.optim.sgd import SGD

        d = 12
        scales = np.logspace(0, 1.5, d)  # condition number ~1e3
        x = (rng.normal(size=(256, d)) * scales).astype(np.float32)
        # target weights sized so the error mass sits in the *small*-scale
        # coordinates — exactly the directions plain GD crawls along
        w_true = (rng.normal(size=(1, d)) / scales).astype(np.float32)
        y = x @ w_true.T

        # Each method gets its own well-tuned lr: GD is bound by
        # 2/lambda_max of the quadratic (loss = ||Xw-y||^2/N, Hessian
        # 2 X^T X / N); natural-gradient steps are ~scale-free, lr O(1).
        lam_max = np.linalg.eigvalsh(2 * (x.T @ x) / 256).max()
        gd_lr = float(1.0 / lam_max)

        def losses(use_kfac):
            lr = 1.0 if use_kfac else gd_lr
            lin = Linear(d, 1, bias=False, rng=np.random.default_rng(0))
            lin.weight.data[...] = 0.0  # start both methods at the origin
            model = Sequential(lin)
            opt = SGD(model.parameters(), lr=lr)
            kfac = KFAC(model, damping=1e-5, kl_clip=1e9, lr=lr) if use_kfac else None
            loss_fn = MSELoss()
            out_losses = []
            for _ in range(40):
                model.zero_grad()
                pred = model(x)
                val = loss_fn(pred, y)
                model.backward(loss_fn.backward())
                if kfac is not None:
                    kfac.step()
                opt.step()
                out_losses.append(val)
            return out_losses

        plain = losses(False)
        precond = losses(True)
        assert np.isfinite(plain).all() and np.isfinite(precond).all()
        # curvature-aware steps beat the best stable GD by a wide margin
        assert precond[-1] < plain[-1] * 0.1
