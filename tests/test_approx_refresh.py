"""Refresh-schedule regressions: drift trigger, staleness budget, damping.

The interactions the approximation tier must never get wrong:

- the step-0 boundary refreshes under both the fixed
  ``kfac_update_freq`` schedule and the drift trigger (no basis yet);
- the ``max_eig_staleness`` budget binds even when the drift metric says
  "fresh enough" — a stale basis (whole-factor or block) never survives
  more than ``budget`` consecutive skips;
- a tiny tolerance refreshes on every candidate step, and the fixed
  ``kfac_update_freq`` schedule is *ignored* once the trigger owns the
  decision;
- the ``diag_warmup`` exact-to-blocked transition forces one refresh
  under the new block keys;
- :class:`~repro.approx.adaptive.AdaptiveDamping` stays within its caps
  and keeps every replica's damping in lockstep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx.adaptive import AdaptiveDamping, DriftTrigger
from repro.approx.blockeig import BlockFactorEig
from repro.core.distributed import LocalDriver
from repro.core.preconditioner import KFAC
from repro.nn.loss import CrossEntropyLoss
from repro.optim.sgd import SGD
from tests.conftest import build_tiny_cnn
from tests.test_grad_worker_frac import run_hybrid


def _stepper(**kfac_kw):
    """Build a single-process training closure; returns (step_fn, kfac)."""
    rng = np.random.default_rng(3)
    x = rng.normal(size=(24, 1, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, size=24).astype(np.int64)
    model = build_tiny_cnn(seed=5)
    kw = dict(damping=0.01, kfac_update_freq=1, fac_update_freq=1, lr=0.1)
    kw.update(kfac_kw)
    kfac = KFAC(model, **kw)
    driver = LocalDriver(kfac)
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    loss_fn = CrossEntropyLoss()

    def step():
        opt.zero_grad()
        out = model(x)
        loss_fn(out, y)
        model.backward(loss_fn.backward())
        driver.step()
        opt.step()

    return step, kfac


class TestRefreshSchedule:
    def test_step_zero_refreshes_fixed_schedule(self):
        step, kfac = _stepper(kfac_update_freq=5)
        step()
        assert kfac.n_second_order_updates == 1
        assert all(layer.ready for layer in kfac.layers)

    def test_step_zero_refreshes_drift_trigger(self):
        step, kfac = _stepper(drift_tol=1e9)
        step()
        # no basis existed, so the trigger must refresh regardless of tol
        assert kfac.n_second_order_updates == 1
        assert kfac.n_drift_refreshes == 1 and kfac.n_drift_skips == 0

    def test_staleness_budget_binds_with_huge_tolerance(self):
        budget = 2
        step, kfac = _stepper(drift_tol=1e9, max_eig_staleness=budget)
        refresh_steps = []
        for i in range(10):
            before = kfac.n_second_order_updates
            step()
            if kfac.n_second_order_updates > before:
                refresh_steps.append(i)
            # a stale basis never survives past the budget, even though
            # the drift metric always says "fresh enough" at tol=1e9
            assert max(kfac.staleness.values(), default=0) <= budget
        # cadence: step 0, then exactly budget+1 steps between refreshes
        assert refresh_steps[0] == 0
        assert all(b - a == budget + 1 for a, b in zip(refresh_steps, refresh_steps[1:]))

    def test_stale_block_never_survives_past_budget(self):
        budget = 2
        step, kfac = _stepper(
            drift_tol=1e9, max_eig_staleness=budget, diag_blocks=4, diag_warmup=1
        )
        seen_keys: set[str] = set()
        for _ in range(10):
            step()
            assert max(kfac.staleness.values(), default=0) <= budget
            seen_keys |= set(kfac.staleness)
        assert kfac.blocks_active
        # block-granular staleness bookkeeping: keys carry block suffixes
        assert any("#" in k for k in seen_keys)

    def test_tiny_tolerance_refreshes_every_other_step(self):
        # the drift decision precedes the step's EMA fold-in and the
        # snapshot follows it, so the first candidate after a refresh
        # sees *exactly* zero drift — tiny tolerance therefore settles
        # into a refresh-every-other-step cadence, not every step
        step, kfac = _stepper(drift_tol=1e-12)
        for _ in range(6):
            step()
        assert kfac.n_second_order_updates == 3  # steps 0, 2, 4
        assert kfac.n_drift_skips == 3

    def test_fixed_schedule_ignored_under_drift_trigger(self):
        # kfac_update_freq=1000 would refresh only at step 0; the trigger
        # owns the decision and keeps the tiny-tolerance cadence instead
        step, kfac = _stepper(drift_tol=1e-12, kfac_update_freq=1000)
        for _ in range(5):
            step()
        assert kfac.n_second_order_updates == 3  # steps 0, 2, 4

    def test_warmup_transition_installs_blocked_basis(self):
        step, kfac = _stepper(drift_tol=1e-12, diag_blocks=4, diag_warmup=1)
        step()  # warmup refresh: exact whole-factor bases
        assert kfac.n_second_order_updates == 1 and kfac.blocks_active
        assert not any(
            isinstance(l.eig_A, BlockFactorEig) or isinstance(l.eig_G, BlockFactorEig)
            for l in kfac.layers
        )
        # the warmup refresh already re-keyed the drift snapshots at block
        # granularity, so the exact basis legitimately survives the
        # zero-drift candidate right after it...
        step()
        assert kfac.n_second_order_updates == 1
        # ...and the next trigger firing refreshes *blocked*: the wide
        # layers swap their exact bases for BlockFactorEig
        step()
        assert kfac.n_second_order_updates == 2
        assert any(
            isinstance(l.eig_A, BlockFactorEig) or isinstance(l.eig_G, BlockFactorEig)
            for l in kfac.layers
        )

    def test_drift_run_spmd_matches_phase_driver(self):
        kw = dict(steps=6, drift_tol=0.05, max_eig_staleness=3)
        phase = run_hybrid(2, **kw)
        spmd = run_hybrid(2, driver="spmd", **kw)
        for name in phase:
            np.testing.assert_array_equal(phase[name], spmd[name])


class TestDriftTriggerUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftTrigger(tol=0.0, budget=3)
        with pytest.raises(ValueError):
            DriftTrigger(tol=0.1, budget=-1)

    def test_decision_table(self):
        trig = DriftTrigger(tol=0.1, budget=2)
        assert trig.should_refresh(0.0, 0, has_basis=False)  # no basis
        assert trig.should_refresh(0.2, 0, has_basis=True)  # drifted
        assert trig.should_refresh(0.0, 2, has_basis=True)  # budget spent
        assert not trig.should_refresh(0.05, 1, has_basis=True)  # fresh

    def test_drift_metric(self):
        a = np.eye(3)
        assert DriftTrigger.drift(a, a) == 0.0
        assert DriftTrigger.drift(2 * a, a) == pytest.approx(1.0)
        assert DriftTrigger.drift(a, np.zeros((3, 3))) == np.inf


class TestAdaptiveDamping:
    def test_validation_and_caps(self):
        ad = AdaptiveDamping(damping=0.01, damping_min=1e-3, damping_max=0.1, ema=0.0)
        with pytest.raises(ValueError):
            ad.update(1.5)
        for _ in range(50):  # persistent clipping saturates at the cap
            ad.update(0.0)
        assert ad.damping == pytest.approx(0.1)
        for _ in range(50):  # persistent unclipped decays to the floor
            ad.update(1.0)
        assert ad.damping == pytest.approx(1e-3)
        assert ad.n_grows > 0 and ad.n_shrinks > 0

    def test_kfac_integration_updates_damping(self):
        step, kfac = _stepper(adapt_damping=True)
        d0 = kfac.damping
        for _ in range(8):
            step()
        assert kfac.damping != d0
        ad = kfac._adaptive_damping
        assert ad is not None and (ad.n_grows + ad.n_shrinks) > 0

    def test_adaptive_damping_lockstep_across_ranks(self):
        state = run_hybrid(2, steps=6, adapt_damping=True)
        vals = np.concatenate([v.ravel() for v in state.values()])
        assert np.all(np.isfinite(vals))
        # bitwise determinism across drivers implies lockstep damping too
        spmd = run_hybrid(2, steps=6, driver="spmd", adapt_damping=True)
        for name in state:
            np.testing.assert_array_equal(state[name], spmd[name])
